#include "sim/async_engine.hpp"

#include <algorithm>
#include <barrier>
#include <bit>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#include "core/error.hpp"
#include "sim/arbitration.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/checkpoint.hpp"

namespace otis::sim {
namespace {

/// Same per-run stream as the serial engines: the zero-delay limit must
/// consume the identical RNG sequence.
constexpr std::uint64_t kRunStream = 0x0715;

/// Ceiling on the conservative window width: bounds the per-shard
/// telemetry frame storage and keeps termination/backlog checks (which
/// only happen at window barriers) reasonably fresh under drain.
constexpr SimTime kMaxLookaheadSlots = 32;

/// Slot-valued latency of a timed delivery: the number of whole slots
/// the packet needed, rounding a partially-used slot up. In the
/// zero-delay limit this equals the phased engine's (now - created + 1).
std::int64_t latency_slots(SimTime delivered_tick, SimTime created_tick) {
  return (delivered_tick - created_tick + kTicksPerSlot - 1) / kTicksPerSlot;
}

/// Widest request mask of any coupler, in words (per-shard scratch size).
std::size_t max_mask_words(const detail::FeedIndex& fi) {
  std::size_t widest = 1;
  for (std::size_t h = 0; h < fi.coupler_count(); ++h) {
    widest = std::max(widest, static_cast<std::size_t>(fi.mask_base[h + 1] -
                                                       fi.mask_base[h]));
  }
  return widest;
}

}  // namespace

template <routing::RouteView Routes>
AsyncEngineT<Routes>::AsyncEngineT(const hypergraph::StackGraph& network,
                                   const Routes& routes,
                                   TrafficGenerator& traffic,
                                   const SimConfig& config,
                                   const TimingModel& timing)
    : network_(network),
      routes_(routes),
      traffic_(traffic),
      config_(config),
      timing_(timing) {
  const auto& hg = network_.hypergraph();
  nodes_ = hg.node_count();
  couplers_ = hg.hyperarc_count();
  OTIS_REQUIRE(timing_.coupler_count() == couplers_,
               "AsyncEngine: timing model sized for another network");
  voq_base_.resize(static_cast<std::size_t>(nodes_) + 1);
  voq_base_[0] = 0;
  for (hypergraph::Node v = 0; v < nodes_; ++v) {
    voq_base_[static_cast<std::size_t>(v) + 1] =
        voq_base_[static_cast<std::size_t>(v)] + hg.out_degree(v);
  }
  feed_.build(hg, voq_base_);
  retune_.assign(static_cast<std::size_t>(voq_base_.back()), 0);
  token_.assign(static_cast<std::size_t>(couplers_), 0);
}

template <routing::RouteView Routes>
bool AsyncEngineT<Routes>::gates_open() const {
  if (timing_.guard() != 0) {
    return false;
  }
  for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
    if (timing_.tuning(h) != 0) {
      return false;
    }
  }
  return true;
}

template <routing::RouteView Routes>
int AsyncEngineT<Routes>::clamp_threads() const {
  int threads = config_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (threads <= 0) {
    threads = 1;
  }
  return static_cast<int>(std::min<std::int64_t>(
      threads, std::max<std::int64_t>(1, std::max(nodes_, couplers_))));
}

template <routing::RouteView Routes>
SimTime AsyncEngineT<Routes>::lookahead_slots() const {
  // A transmission in slot t lands no earlier than (t+1) * kTicksPerSlot
  // + min_propagation, so it cannot reach another shard's receive step
  // before slot t + 1 + floor(min_propagation / kTicksPerSlot). Tuning
  // and guard delay *eligibility*, never a landing time, so they cannot
  // widen the window.
  return std::min<SimTime>(kMaxLookaheadSlots,
                           1 + timing_.min_propagation() / kTicksPerSlot);
}

template <routing::RouteView Routes>
typename AsyncEngineT<Routes>::ShardPlan AsyncEngineT<Routes>::plan_shards(
    int threads) const {
  ShardPlan plan;
  plan.node_cut.assign(static_cast<std::size_t>(threads) + 1, 0);
  plan.node_cut.back() = nodes_;
  plan.couplers.resize(static_cast<std::size_t>(threads));

  // Node of each VOQ, to read coupler feed spans off the FeedIndex.
  std::vector<hypergraph::Node> node_of_queue(
      static_cast<std::size_t>(voq_base_.back()));
  for (hypergraph::Node v = 0; v < nodes_; ++v) {
    for (std::int64_t qi = voq_base_[static_cast<std::size_t>(v)];
         qi < voq_base_[static_cast<std::size_t>(v) + 1]; ++qi) {
      node_of_queue[static_cast<std::size_t>(qi)] = v;
    }
  }

  // A cut between nodes k-1 and k is feed-local iff no coupler's feed
  // set spans it. Windows longer than one slot have a coupler's owner
  // arbitrating over its feed VOQs mid-window, which is only safe when
  // every one of those queues lives in the owner's shard -- so cuts
  // inside a feed span are forbidden and the ideal balanced boundaries
  // snap outward to the nearest legal position.
  std::vector<std::uint8_t> allowed(static_cast<std::size_t>(nodes_) + 1, 1);
  std::vector<hypergraph::Node> min_source(
      static_cast<std::size_t>(couplers_), 0);
  for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
    const std::size_t fb =
        static_cast<std::size_t>(feed_.feed_base[static_cast<std::size_t>(h)]);
    const std::size_t fe = static_cast<std::size_t>(
        feed_.feed_base[static_cast<std::size_t>(h) + 1]);
    if (fb == fe) {
      continue;
    }
    hypergraph::Node lo = nodes_;
    hypergraph::Node hi = 0;
    for (std::size_t p = fb; p < fe; ++p) {
      const hypergraph::Node v =
          node_of_queue[static_cast<std::size_t>(feed_.feed_qi[p])];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    min_source[static_cast<std::size_t>(h)] = lo;
    for (hypergraph::Node k = lo + 1; k <= hi; ++k) {
      allowed[static_cast<std::size_t>(k)] = 0;
    }
  }

  for (int w = 1; w < threads; ++w) {
    const std::int64_t ideal = nodes_ * w / threads;
    std::int64_t best = 0;
    for (std::int64_t d = 0;; ++d) {
      if (ideal - d >= 0 &&
          allowed[static_cast<std::size_t>(ideal - d)] != 0) {
        best = ideal - d;
        break;
      }
      if (ideal + d <= nodes_ &&
          allowed[static_cast<std::size_t>(ideal + d)] != 0) {
        best = ideal + d;
        break;
      }
    }
    // Snapping keeps cuts monotone; coinciding cuts leave a shard empty
    // (it still participates in the barriers).
    plan.node_cut[static_cast<std::size_t>(w)] =
        std::max(best, plan.node_cut[static_cast<std::size_t>(w) - 1]);
  }
  plan.node_owner.assign(static_cast<std::size_t>(nodes_), 0);
  for (int w = 0; w < threads; ++w) {
    for (std::int64_t v = plan.node_cut[static_cast<std::size_t>(w)];
         v < plan.node_cut[static_cast<std::size_t>(w) + 1]; ++v) {
      plan.node_owner[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(w);
    }
  }
  for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
    plan.couplers[static_cast<std::size_t>(
                      plan.node_owner[static_cast<std::size_t>(
                          min_source[static_cast<std::size_t>(h)])])]
        .push_back(h);
  }
  return plan;
}

template <routing::RouteView Routes>
RunMetrics AsyncEngineT<Routes>::run(
    std::vector<std::int64_t>& coupler_success) {
  if (config_.workload != nullptr) {
    return config_.engine == Engine::kAsyncSharded
               ? run_workload_sharded(coupler_success)
               : run_workload(coupler_success);
  }
  if (config_.engine == Engine::kAsyncSharded) {
    return run_sharded(coupler_success);
  }
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);
  core::Rng rng = core::Rng::stream(config_.seed, kRunStream);
  RunMetrics metrics;
  metrics.slots = config_.measure_slots;
  if (resolve_latency_sketch(config_.latency_mode, nodes_)) {
    metrics.latency.use_sketch();
  }
  metrics.latency.reserve(
      std::min(config_.measure_slots * nodes_, kLatencyReserveCap));

  const SimTime horizon = config_.warmup_slots + config_.measure_slots;
  const SimTime drain_bound = horizon + 1'000'000;
  const SimTime warmup_tick = ticks_from_slots(config_.warmup_slots);
  const SimTime guard = timing_.guard();
  const bool open = gates_open();
  std::int64_t inflight = 0;
  std::int64_t next_packet_id = 0;

  TimedVoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()));
  detail::OccupancyMasks masks;
  masks.init(feed_);

  /// An in-flight transmission: coupler -> receivers, landing at the
  /// event's calendar time. `measuring` is the transmission slot's flag
  /// (the phased engine accounts deliveries in the slot that carried
  /// them, so the async engine must too).
  struct Arrival {
    VoqEntry entry;
    hypergraph::HyperarcId coupler = 0;
    bool measuring = false;
  };
  CalendarQueue<Arrival> propagations;

  // Hoisted scratch, as in the phased engine.
  std::vector<std::size_t> winners;
  std::vector<std::size_t> scratch;
  std::vector<std::uint64_t> eligible(
      open ? 0 : static_cast<std::size_t>(feed_.mask_base.back()), 0);
  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const std::int64_t queue_cap = config_.queue_capacity;
  const Arbitration policy = config_.arbitration;

  // Telemetry (see phased run_serial): one pointer test per slot when
  // detached, state reads only at sampling boundaries. The async
  // engine additionally reports the calendar-queue pending count.
  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  if (tel != nullptr && tel->trace_sink() != nullptr) {
    windows = obs::WindowSpans(tel->trace_sink(), tel->tid(),
                               config_.warmup_slots, horizon);
  }
  const auto fill_probes = [&]() {
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    reg.set(tel->engine_probes().pending_events,
            static_cast<std::int64_t>(propagations.pending()));
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, voq, 0, couplers_);
  };

  /// Queues `entry` at `at`; `tick` is when it landed there (its
  /// transmitter is tuned `tuning` ticks later). Mirrors the phased
  /// engine's enqueue, including drop accounting. On the gates-open
  /// fast path ready is never read, so the next-coupler lookup that
  /// only feeds the tuning latency is skipped.
  const auto enqueue = [&](const VoqEntry& entry, hypergraph::Node at,
                           SimTime tick, bool measuring) {
    const std::int32_t slot = routes_.next_slot(at, entry.destination);
    const std::size_t qi = static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot);
    const std::size_t size = voq.size(qi);
    if (queue_cap > 0 && static_cast<std::int64_t>(size) >= queue_cap) {
      if (measuring) {
        ++metrics.dropped_packets;
      }
      --inflight;
      return;
    }
    SimTime ready = tick;
    if (!open) {
      ready = tick +
              timing_.tuning(routes_.next_coupler(at, entry.destination));
    }
    voq.push(qi, TimedVoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops, ready});
    if (size == 0) {
      masks.mark_nonempty(feed_, qi);
    }
  };

  /// Receive step of one landed transmission.
  const auto receive = [&](const Arrival& arrival, SimTime tick) {
    const hypergraph::Node relay =
        routes_.relay(arrival.coupler, arrival.entry.destination);
    if (relay == arrival.entry.destination) {
      if (arrival.measuring) {
        ++metrics.delivered_packets;
        if (arrival.entry.created >= warmup_tick) {
          metrics.latency.record(latency_slots(tick, arrival.entry.created));
        }
      }
      --inflight;
    } else {
      enqueue(arrival.entry, relay, tick, arrival.measuring);
    }
  };

  // Checkpointing (sim/checkpoint.hpp): same "blob = state at the top
  // of a slot that will execute" contract as the phased serial loop,
  // plus the async-only state -- re-tune deadlines, the calendar's
  // pending arrivals (re-pushed keyed: pop order is a pure function of
  // (time, seq)) and its auto-sequence counter.
  const std::int64_t ckpt_every = config_.checkpoint_every_slots;
  const auto save_checkpoint = [&](SimTime next_slot) {
    core::BlobWriter out;
    checkpoint_write_header(out, config_, nodes_, couplers_);
    out.put_i64(next_slot);
    out.put_i64(inflight);
    out.put_i64(next_packet_id);
    out.put_rng(rng);
    out.put_i64_vec(token_);
    out.put_i64_vec(retune_);
    checkpoint_put_metrics(out, metrics);
    out.put_i64_vec(coupler_success);
    checkpoint_put_voq(out, voq);
    out.put_u64(propagations.pending());
    propagations.for_each([&](const typename CalendarQueue<Arrival>::Entry&
                                  event) {
      out.put_i64(event.time);
      out.put_u64(event.seq);
      out.put_i64(event.payload.entry.id);
      out.put_i64(event.payload.entry.destination);
      out.put_i64(event.payload.entry.created);
      out.put_i64(event.payload.entry.hops);
      out.put_u64(static_cast<std::uint64_t>(event.payload.coupler));
      out.put_u8(event.payload.measuring ? 1 : 0);
    });
    out.put_u64(propagations.next_seq());
    std::vector<std::int64_t> traffic_state;
    traffic_.checkpoint_state(traffic_state);
    out.put_i64_vec(traffic_state);
    checkpoint_put_telemetry(out, tel, tel_last);
    checkpoint_store(config_.checkpoint_path, out);
  };
  SimTime start_slot = 0;
  if (config_.checkpoint_resume) {
    std::vector<std::uint8_t> blob;
    if (checkpoint_load(config_.checkpoint_path, config_, nodes_, couplers_,
                        blob)) {
      core::BlobReader in(blob);
      (void)checkpoint_read_header(in, config_, nodes_, couplers_);
      start_slot = in.get_i64();
      inflight = in.get_i64();
      next_packet_id = in.get_i64();
      rng = in.get_rng();
      token_ = in.get_i64_vec();
      retune_ = in.get_i64_vec();
      checkpoint_get_metrics(in, metrics);
      coupler_success = in.get_i64_vec();
      checkpoint_get_voq(in, voq);
      const std::uint64_t pending = in.get_u64();
      for (std::uint64_t i = 0; i < pending; ++i) {
        const SimTime time = in.get_i64();
        const std::uint64_t seq = in.get_u64();
        Arrival arrival;
        arrival.entry.id = in.get_i64();
        arrival.entry.destination = in.get_i64();
        arrival.entry.created = in.get_i64();
        arrival.entry.hops = static_cast<std::int32_t>(in.get_i64());
        arrival.coupler = static_cast<hypergraph::HyperarcId>(in.get_u64());
        arrival.measuring = in.get_u8() != 0;
        propagations.push_keyed(time, seq, std::move(arrival));
      }
      propagations.set_next_seq(in.get_u64());
      traffic_.restore_state(in.get_i64_vec());
      tel_last = checkpoint_get_telemetry(in, tel);
      for (std::size_t qi = 0; qi < voq.queue_count(); ++qi) {
        if (!voq.empty(qi)) {
          masks.mark_nonempty(feed_, qi);
        }
      }
    }
  }

  for (SimTime now = start_slot;;) {
    if (ckpt_every > 0 && now != start_slot && now % ckpt_every == 0) {
      save_checkpoint(now);
      if (config_.checkpoint_stop_at >= 0 &&
          now >= config_.checkpoint_stop_at) {
        // Drill hook: pretend the process died right after the write
        // (no in-flight flush, no telemetry finish()).
        metrics.backlog = inflight;
        metrics.interrupted = true;
        return metrics;
      }
    }
    const SimTime slot_tick = ticks_from_slots(now);
    const bool measuring = now >= config_.warmup_slots && now < horizon;

    // Receive every transmission that landed by this slot boundary --
    // the phased engine's phase 3 runs before the next slot's phase 1,
    // so arrivals at exactly the boundary precede this slot's work.
    while (!propagations.empty() && propagations.peek().time <= slot_tick) {
      auto event = propagations.pop();
      receive(event.payload, event.time);
    }

    // Generate (stops at the horizon; drain only afterwards). Compact
    // batch: only the slot's actual senders come back.
    if (now < horizon) {
      const std::size_t sender_count =
          traffic_.demand_batch_senders(0, nodes_, rng, senders.data());
      if (measuring) {
        metrics.offered_packets += static_cast<std::int64_t>(sender_count);
      }
      inflight += static_cast<std::int64_t>(sender_count);
      for (std::size_t i = 0; i < sender_count; ++i) {
        const SenderDemand d = senders[i];
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, d.source, d.destination);
        }
        enqueue(VoqEntry{next_packet_id++, d.destination, slot_tick, 0},
                d.source, slot_tick, measuring);
      }
    }

    // Arbitrate: winner selection over the occupied couplers,
    // restricted to head packets whose transmitter tuned in time (the
    // gates-open fast path arbitrates the occupancy words directly).
    for (std::size_t aw = 0; aw < masks.active.size(); ++aw) {
      std::uint64_t aword = masks.active[aw];
      while (aword != 0) {
        const std::size_t h =
            (aw << 6) + static_cast<std::size_t>(std::countr_zero(aword));
        aword &= aword - 1;
        const std::size_t fb = static_cast<std::size_t>(feed_.feed_base[h]);
        const std::size_t source_count =
            static_cast<std::size_t>(feed_.feed_base[h + 1]) - fb;
        const std::size_t mb = static_cast<std::size_t>(feed_.mask_base[h]);
        const std::size_t words =
            static_cast<std::size_t>(feed_.mask_base[h + 1]) - mb;
        const std::uint64_t* request = masks.request.data() + mb;
        if (!open) {
          // Head eligible iff its own tuning finished AND the
          // transmitter re-tuned since the queue's previous
          // transmission, both guard ticks before the boundary.
          std::uint64_t any = 0;
          for (std::size_t wi = 0; wi < words; ++wi) {
            std::uint64_t bits = request[wi];
            std::uint64_t elig = 0;
            while (bits != 0) {
              const std::size_t si =
                  (wi << 6) +
                  static_cast<std::size_t>(std::countr_zero(bits));
              const std::uint64_t bit = bits & (~bits + 1);
              bits &= bits - 1;
              const std::size_t qi =
                  static_cast<std::size_t>(feed_.feed_qi[fb + si]);
              const SimTime gate =
                  std::max(voq.front_ready(qi), retune_[qi]);
              if (gate + guard <= slot_tick) {
                elig |= bit;
              }
            }
            eligible[mb + wi] = elig;
            any |= elig;
          }
          if (any == 0) {
            continue;
          }
          request = eligible.data() + mb;
        }
        const bool collided =
            detail::pick_winners(policy, capacity, source_count, request,
                                 words, token_[h], rng, winners, scratch);
        if (collided && measuring) {
          ++metrics.collisions;
        }
        for (std::size_t si : winners) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          TimedVoqEntry entry = voq.pop_front(qi);
          if (voq.empty(qi)) {
            masks.mark_empty(feed_, qi);
          }
          if (!open) {
            // Transmitter dead time: busy through this slot, re-tunes
            // after. (With gates open the re-tune lands exactly on the
            // next boundary and can never block, so it is not tracked.)
            retune_[qi] = slot_tick + kTicksPerSlot +
                          timing_.tuning(
                              static_cast<hypergraph::HyperarcId>(h));
          }
          ++entry.hops;
          if (measuring) {
            ++metrics.coupler_transmissions;
            ++coupler_success[h];
          }
          // Propagate: the transmission occupies slot `now` and lands
          // prop(h) ticks after the next boundary.
          propagations.push(
              slot_tick + kTicksPerSlot +
                  timing_.propagation(static_cast<hypergraph::HyperarcId>(h)),
              Arrival{VoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops},
                      static_cast<hypergraph::HyperarcId>(h), measuring});
        }
      }
    }

    if (tel != nullptr) {
      windows.at_slot(now);
      if (tel->due(now)) {
        fill_probes();
        tel->sample(now);
      }
      tel_last = now;
    }

    const bool more_traffic = now + 1 < horizon;
    const bool keep_draining = config_.drain && inflight > 0;
    if (!(more_traffic || keep_draining)) {
      break;
    }
    ++now;
    if (now > drain_bound) {
      break;
    }
  }

  // Transmissions of the final slot are still in flight; land them (the
  // phased engine's last phase 3 does the same work inside the slot).
  while (!propagations.empty()) {
    auto event = propagations.pop();
    receive(event.payload, event.time);
  }

  metrics.backlog = inflight;
  if (tel != nullptr) {
    windows.finish();
    fill_probes();
    tel->finish(tel_last);
  }
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics AsyncEngineT<Routes>::run_workload(
    std::vector<std::int64_t>& coupler_success) {
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);
  workload::Workload& load = *config_.workload;
  load.reset();

  // Workload RNG contract (shared with the phased engines): generation
  // from per-node streams, arbitration from per-coupler streams.
  std::vector<core::Rng> gen_rng = detail::node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng =
      detail::coupler_streams(config_.seed, couplers_);

  RunMetrics metrics;
  const std::int64_t background_base = load.packet_count();
  // Shared with the phased engines; skew can only defer deliveries by
  // bounded sub-slot amounts, so no extra headroom needed.
  const SimTime bound = detail::workload_slot_bound(load);
  const SimTime guard = timing_.guard();
  const bool open = gates_open();
  std::int64_t inflight = 0;
  SimTime makespan_tick = 0;

  TimedVoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()));
  detail::OccupancyMasks masks;
  masks.init(feed_);

  struct Arrival {
    VoqEntry entry;
    hypergraph::HyperarcId coupler = 0;
  };
  CalendarQueue<Arrival> propagations;

  std::vector<std::size_t> winners;
  std::vector<std::size_t> scratch;
  std::vector<std::uint64_t> eligible(
      open ? 0 : static_cast<std::size_t>(feed_.mask_base.back()), 0);
  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));
  std::vector<workload::WorkloadPacket> inject;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const Arbitration policy = config_.arbitration;
  if (resolve_latency_sketch(config_.latency_mode, nodes_)) {
    metrics.latency.use_sketch();
  }
  metrics.latency.reserve(std::min(background_base, kLatencyReserveCap));

  // Telemetry, as in the open-loop run above (no warmup window).
  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  if (tel != nullptr && tel->trace_sink() != nullptr) {
    windows = obs::WindowSpans(tel->trace_sink(), tel->tid(), 0, bound + 1);
  }
  const auto fill_probes = [&]() {
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    reg.set(tel->engine_probes().pending_events,
            static_cast<std::int64_t>(propagations.pending()));
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, voq, 0, couplers_);
  };

  // queue_capacity is 0 in workload mode (validated): never drops.
  const auto enqueue = [&](const VoqEntry& entry, hypergraph::Node at,
                           SimTime tick) {
    const std::int32_t slot = routes_.next_slot(at, entry.destination);
    const std::size_t qi = static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot);
    const std::size_t size = voq.size(qi);
    SimTime ready = tick;
    if (!open) {
      ready = tick +
              timing_.tuning(routes_.next_coupler(at, entry.destination));
    }
    voq.push(qi, TimedVoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops, ready});
    if (size == 0) {
      masks.mark_nonempty(feed_, qi);
    }
  };

  const auto receive = [&](const Arrival& arrival, SimTime tick) {
    const hypergraph::Node relay =
        routes_.relay(arrival.coupler, arrival.entry.destination);
    if (relay == arrival.entry.destination) {
      ++metrics.delivered_packets;
      metrics.latency.record(latency_slots(tick, arrival.entry.created));
      if (arrival.entry.id < background_base) {
        load.delivered(arrival.entry.id);
        makespan_tick = std::max(makespan_tick, tick);
      }
      --inflight;
    } else {
      enqueue(arrival.entry, relay, tick);
    }
  };

  SimTime now = 0;
  for (;;) {
    const SimTime slot_tick = ticks_from_slots(now);

    // Receive everything that landed by this boundary; all of a
    // boundary's deliveries reach the workload before the poll below
    // (order within the boundary is irrelevant by the poll contract).
    while (!propagations.empty() && propagations.peek().time <= slot_tick) {
      auto event = propagations.pop();
      receive(event.payload, event.time);
    }
    const bool load_done = load.done();
    if (load_done && inflight == 0) {
      break;
    }
    if (now > bound) {
      // The phased engines count the bound-hit boundary as a slot
      // (they break after ++now); do the same so slots/backlog agree
      // across engines even for runs the bound cuts off.
      ++now;
      break;
    }

    // Inject the packets that became eligible, then background traffic
    // (same per-node VOQ push order as the phased engines).
    if (!load_done) {
      inject.clear();
      load.poll(now, inject);
      for (const workload::WorkloadPacket& packet : inject) {
        ++metrics.offered_packets;
        ++inflight;
        enqueue(VoqEntry{packet.id, packet.destination, slot_tick, 0},
                packet.source, slot_tick);
      }
      const std::size_t sender_count = traffic_.demand_batch_senders_streams(
          0, nodes_, gen_rng.data(), senders.data());
      metrics.offered_packets += static_cast<std::int64_t>(sender_count);
      inflight += static_cast<std::int64_t>(sender_count);
      for (std::size_t i = 0; i < sender_count; ++i) {
        const SenderDemand d = senders[i];
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, d.source, d.destination);
        }
        enqueue(VoqEntry{background_base + now * nodes_ + d.source,
                         d.destination, slot_tick, 0},
                d.source, slot_tick);
      }
    }

    // Arbitrate over eligibility-gated heads, per-coupler streams.
    for (std::size_t aw = 0; aw < masks.active.size(); ++aw) {
      std::uint64_t aword = masks.active[aw];
      while (aword != 0) {
        const std::size_t h =
            (aw << 6) + static_cast<std::size_t>(std::countr_zero(aword));
        aword &= aword - 1;
        const std::size_t fb = static_cast<std::size_t>(feed_.feed_base[h]);
        const std::size_t source_count =
            static_cast<std::size_t>(feed_.feed_base[h + 1]) - fb;
        const std::size_t mb = static_cast<std::size_t>(feed_.mask_base[h]);
        const std::size_t words =
            static_cast<std::size_t>(feed_.mask_base[h + 1]) - mb;
        const std::uint64_t* request = masks.request.data() + mb;
        if (!open) {
          std::uint64_t any = 0;
          for (std::size_t wi = 0; wi < words; ++wi) {
            std::uint64_t bits = request[wi];
            std::uint64_t elig = 0;
            while (bits != 0) {
              const std::size_t si =
                  (wi << 6) +
                  static_cast<std::size_t>(std::countr_zero(bits));
              const std::uint64_t bit = bits & (~bits + 1);
              bits &= bits - 1;
              const std::size_t qi =
                  static_cast<std::size_t>(feed_.feed_qi[fb + si]);
              const SimTime gate =
                  std::max(voq.front_ready(qi), retune_[qi]);
              if (gate + guard <= slot_tick) {
                elig |= bit;
              }
            }
            eligible[mb + wi] = elig;
            any |= elig;
          }
          if (any == 0) {
            continue;
          }
          request = eligible.data() + mb;
        }
        const bool collided = detail::pick_winners(
            policy, capacity, source_count, request, words, token_[h],
            arb_rng[h], winners, scratch);
        if (collided) {
          ++metrics.collisions;
        }
        for (std::size_t si : winners) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          TimedVoqEntry entry = voq.pop_front(qi);
          if (voq.empty(qi)) {
            masks.mark_empty(feed_, qi);
          }
          if (!open) {
            retune_[qi] = slot_tick + kTicksPerSlot +
                          timing_.tuning(
                              static_cast<hypergraph::HyperarcId>(h));
          }
          ++entry.hops;
          ++metrics.coupler_transmissions;
          ++coupler_success[h];
          propagations.push(
              slot_tick + kTicksPerSlot +
                  timing_.propagation(static_cast<hypergraph::HyperarcId>(h)),
              Arrival{VoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops},
                      static_cast<hypergraph::HyperarcId>(h)});
        }
      }
    }

    if (tel != nullptr) {
      windows.at_slot(now);
      if (tel->due(now)) {
        fill_probes();
        tel->sample(now);
      }
      tel_last = now;
    }
    ++now;
  }

  metrics.slots = now;
  metrics.makespan_slots =
      (makespan_tick + kTicksPerSlot - 1) / kTicksPerSlot;
  metrics.backlog = inflight;
  if (tel != nullptr) {
    windows.finish();
    fill_probes();
    tel->finish(tel_last);
  }
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics AsyncEngineT<Routes>::run_sharded(
    std::vector<std::int64_t>& coupler_success) {
  const int threads = clamp_threads();
  const ShardPlan plan = plan_shards(threads);
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);

  // Sharded stream universe (shared with the sharded phased engine):
  // per-node generation streams, per-coupler arbitration streams, so
  // the partition can never influence a draw. The serial async engine's
  // single kRunStream interleaves draws across the whole network and
  // cannot be split without replaying it, so the sharded open loop is a
  // different -- equally valid -- universe; in the slot-aligned limit it
  // is bit-identical to Engine::kSharded, and workload runs (below) are
  // bit-identical to serial Engine::kAsync.
  std::vector<core::Rng> gen_rng = detail::node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng =
      detail::coupler_streams(config_.seed, couplers_);

  RunMetrics metrics;
  metrics.slots = config_.measure_slots;

  const SimTime horizon = config_.warmup_slots + config_.measure_slots;
  const SimTime drain_bound = horizon + 1'000'000;
  const SimTime warmup_tick = ticks_from_slots(config_.warmup_slots);
  const SimTime guard = timing_.guard();
  const bool open = gates_open();
  const SimTime lookahead = lookahead_slots();
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const std::int64_t queue_cap = config_.queue_capacity;
  const Arbitration policy = config_.arbitration;

  TimedVoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()),
           static_cast<std::size_t>(threads));

  struct Arrival {
    VoqEntry entry;
    hypergraph::HyperarcId coupler = 0;
    bool measuring = false;
  };
  /// A cross-shard arrival: the consumer replays the producer's
  /// push_keyed at the window barrier, so the global (time, seq) pop
  /// order is preserved across the handoff.
  struct Mail {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Arrival arrival;
  };

  struct Shard {
    std::int64_t node_begin = 0, node_end = 0;
    std::int64_t offered = 0, delivered = 0, dropped = 0;
    std::int64_t transmissions = 0, collisions = 0;
    std::int64_t inflight_delta = 0;  ///< since the last window fold
    std::int64_t events_delta = 0;    ///< calendar pushes - pops, ditto
    LatencyStats latency;
    CalendarQueue<Arrival> calendar;
    std::vector<std::vector<Mail>> outbox;  ///< per consumer shard
    std::vector<std::size_t> winners, scratch;
    std::vector<std::uint64_t> request;
    /// Telemetry snapshots per window slot (cumulative deltas).
    std::vector<std::int64_t> backlog_snap, events_snap;
  };
  std::vector<Shard> shards(static_cast<std::size_t>(threads));
  const std::size_t req_words = max_mask_words(feed_);
  for (int w = 0; w < threads; ++w) {
    Shard& shard = shards[static_cast<std::size_t>(w)];
    shard.node_begin = plan.node_cut[static_cast<std::size_t>(w)];
    shard.node_end = plan.node_cut[static_cast<std::size_t>(w) + 1];
    shard.outbox.resize(static_cast<std::size_t>(threads));
    shard.request.assign(req_words, 0);
    shard.backlog_snap.assign(static_cast<std::size_t>(lookahead), 0);
    shard.events_snap.assign(static_cast<std::size_t>(lookahead), 0);
    if (resolve_latency_sketch(config_.latency_mode, nodes_)) {
      shard.latency.use_sketch();
    }
    shard.latency.reserve(
        std::min(config_.measure_slots * (shard.node_end - shard.node_begin),
                 kLatencyReserveCap));
    for (std::int64_t qi =
             voq_base_[static_cast<std::size_t>(shard.node_begin)];
         qi < voq_base_[static_cast<std::size_t>(shard.node_end)]; ++qi) {
      voq.set_pool(static_cast<std::size_t>(qi),
                   static_cast<std::uint32_t>(w));
    }
  }

  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));

  // Telemetry: per-shard frames for every slot of the window, folded in
  // the window barrier's completion step in slot order -- probe values
  // and timeseries bytes cannot depend on the partition. Backlog and
  // calendar-pending are global gauges reconstructed from the window
  // start value plus the shards' cumulative per-slot deltas.
  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  std::vector<obs::ProbeRegistry> frames;
  if (tel != nullptr) {
    if (tel->trace_sink() != nullptr) {
      windows = obs::WindowSpans(tel->trace_sink(), tel->tid(),
                                 config_.warmup_slots, horizon);
    }
    if (tel->sampling()) {
      frames.reserve(static_cast<std::size_t>(threads) *
                     static_cast<std::size_t>(lookahead));
      for (std::int64_t i = 0; i < threads * lookahead; ++i) {
        frames.push_back(tel->probes().clone_schema());
      }
    }
  }

  // Runtime channel (obs/runtime_stats.hpp): per-shard barrier-wait /
  // window-width / mailbox / calendar-depth accounting. The flag is
  // captured once; an attached-but-disabled session never reaches the
  // loop. Sends are counted at the producer before the barrier, replays
  // at the consumer inside the completion step (workers blocked), so
  // across a run total sends == total replays.
  obs::RuntimeStats* const rts = config_.runtime_stats.get();
  const bool rt_on = rts != nullptr && rts->active();
  std::vector<obs::ShardRuntime> rt_shards(
      rt_on ? static_cast<std::size_t>(threads) : 0);

  // Window state shared across workers; mutated only by the window
  // barrier's completion step, which runs while every worker is blocked.
  SimTime win_begin = 0;
  SimTime win_end = std::min(lookahead, horizon);
  std::int64_t inflight = 0;
  std::int64_t pending_total = 0;
  bool running = true;
  bool interrupted = false;  ///< checkpoint_stop_at drill fired

  // Checkpointing. Saves happen at window boundaries (the completion
  // step, all workers blocked), at the first boundary at or past each
  // checkpoint_every_slots multiple. As in the sharded phased engine
  // the blob folds the per-shard counters and keeps the per-unit RNG
  // streams, so it is thread-count independent; calendar entries carry
  // their global (time, seq) keys, and on restore each one lands on the
  // calendar of the shard owning its relay node (final deliveries touch
  // only counters, so any calendar works for them -- shard 0 takes
  // them).
  const std::int64_t ckpt_every = config_.checkpoint_every_slots;
  SimTime next_ckpt =
      ckpt_every > 0 ? ckpt_every : std::numeric_limits<SimTime>::max();
  std::exception_ptr ckpt_error;  ///< completion step is noexcept
  const auto save_checkpoint = [&](SimTime boundary) {
    core::BlobWriter out;
    checkpoint_write_header(out, config_, nodes_, couplers_);
    out.put_i64(boundary);
    out.put_i64(inflight);
    out.put_i64(pending_total);
    for (const core::Rng& r : gen_rng) {
      out.put_rng(r);
    }
    for (const core::Rng& r : arb_rng) {
      out.put_rng(r);
    }
    out.put_i64_vec(token_);
    out.put_i64_vec(retune_);
    std::int64_t offered = 0, delivered = 0, dropped = 0;
    std::int64_t transmissions = 0, collisions = 0;
    LatencyStats latency;
    std::uint64_t events = 0;
    for (const Shard& shard : shards) {
      offered += shard.offered;
      delivered += shard.delivered;
      dropped += shard.dropped;
      transmissions += shard.transmissions;
      collisions += shard.collisions;
      latency.merge(shard.latency);
      events += shard.calendar.pending();
    }
    out.put_i64(offered);
    out.put_i64(delivered);
    out.put_i64(dropped);
    out.put_i64(transmissions);
    out.put_i64(collisions);
    latency.serialize(out);
    out.put_i64_vec(coupler_success);
    checkpoint_put_voq(out, voq);
    out.put_u64(events);
    for (const Shard& shard : shards) {
      shard.calendar.for_each(
          [&](const typename CalendarQueue<Arrival>::Entry& event) {
            out.put_i64(event.time);
            out.put_u64(event.seq);
            out.put_i64(event.payload.entry.id);
            out.put_i64(event.payload.entry.destination);
            out.put_i64(event.payload.entry.created);
            out.put_i64(event.payload.entry.hops);
            out.put_u64(static_cast<std::uint64_t>(event.payload.coupler));
            out.put_u8(event.payload.measuring ? 1 : 0);
          });
    }
    std::vector<std::int64_t> traffic_state;
    traffic_.checkpoint_state(traffic_state);
    out.put_i64_vec(traffic_state);
    checkpoint_put_telemetry(out, tel, tel_last);
    checkpoint_store(config_.checkpoint_path, out);
  };
  if (config_.checkpoint_resume) {
    std::vector<std::uint8_t> blob;
    if (checkpoint_load(config_.checkpoint_path, config_, nodes_, couplers_,
                        blob)) {
      core::BlobReader in(blob);
      (void)checkpoint_read_header(in, config_, nodes_, couplers_);
      win_begin = in.get_i64();
      win_end = std::min(win_begin + lookahead,
                         win_begin < horizon ? horizon : drain_bound + 1);
      if (ckpt_every > 0) {
        next_ckpt = (win_begin / ckpt_every + 1) * ckpt_every;
      }
      inflight = in.get_i64();
      pending_total = in.get_i64();
      for (core::Rng& r : gen_rng) {
        r = in.get_rng();
      }
      for (core::Rng& r : arb_rng) {
        r = in.get_rng();
      }
      token_ = in.get_i64_vec();
      retune_ = in.get_i64_vec();
      Shard& s0 = shards[0];
      s0.offered = in.get_i64();
      s0.delivered = in.get_i64();
      s0.dropped = in.get_i64();
      s0.transmissions = in.get_i64();
      s0.collisions = in.get_i64();
      s0.latency.deserialize(in);
      coupler_success = in.get_i64_vec();
      checkpoint_get_voq(in, voq);
      const std::uint64_t events = in.get_u64();
      for (std::uint64_t i = 0; i < events; ++i) {
        const SimTime time = in.get_i64();
        const std::uint64_t seq = in.get_u64();
        Arrival arrival;
        arrival.entry.id = in.get_i64();
        arrival.entry.destination = in.get_i64();
        arrival.entry.created = in.get_i64();
        arrival.entry.hops = static_cast<std::int32_t>(in.get_i64());
        arrival.coupler = static_cast<hypergraph::HyperarcId>(in.get_u64());
        arrival.measuring = in.get_u8() != 0;
        const hypergraph::Node relay =
            routes_.relay(arrival.coupler, arrival.entry.destination);
        const std::size_t owner =
            relay != arrival.entry.destination
                ? static_cast<std::size_t>(
                      plan.node_owner[static_cast<std::size_t>(relay)])
                : 0;
        shards[owner].calendar.push_keyed(time, seq, std::move(arrival));
      }
      traffic_.restore_state(in.get_i64_vec());
      tel_last = checkpoint_get_telemetry(in, tel);
    }
  }

  const auto on_window_end = [&]() noexcept {
    // Drain the mailboxes while every worker is blocked: a worker-side
    // drain would race with a producer that cleared the barrier first
    // and is already appending next-window mail to the same outbox.
    // Lookahead guarantees every mailed time is at or past the next
    // window's boundary, so the drain order across producers is
    // irrelevant -- pop order is a pure function of (time, seq).
    for (Shard& producer : shards) {
      for (int w = 0; w < threads; ++w) {
        auto& box = producer.outbox[static_cast<std::size_t>(w)];
        if (rt_on) {
          rt_shards[static_cast<std::size_t>(w)].mailbox_msgs_replayed +=
              static_cast<std::int64_t>(box.size());
        }
        for (Mail& mail : box) {
          shards[static_cast<std::size_t>(w)].calendar.push_keyed(
              mail.time, mail.seq, std::move(mail.arrival));
        }
        box.clear();
      }
    }
    if (tel != nullptr) {
      for (SimTime s = win_begin; s < win_end; ++s) {
        windows.at_slot(s);
        if (tel->due(s)) {
          const std::size_t k = static_cast<std::size_t>(s - win_begin);
          obs::ProbeRegistry& reg = tel->probes();
          reg.zero();
          std::int64_t backlog = inflight;
          std::int64_t pending = pending_total;
          for (int w = 0; w < threads; ++w) {
            reg.accumulate(frames[static_cast<std::size_t>(w) *
                                      static_cast<std::size_t>(lookahead) +
                                  k]);
            backlog += shards[static_cast<std::size_t>(w)].backlog_snap[k];
            pending += shards[static_cast<std::size_t>(w)].events_snap[k];
          }
          reg.set(tel->engine_probes().backlog, backlog);
          reg.set(tel->engine_probes().pending_events, pending);
          tel->sample(s);
        }
        tel_last = s;
      }
    }
    for (Shard& shard : shards) {
      inflight += shard.inflight_delta;
      shard.inflight_delta = 0;
      pending_total += shard.events_delta;
      shard.events_delta = 0;
    }
    const bool more_traffic = win_end < horizon;
    const bool keep_draining = config_.drain && inflight > 0;
    if (!(more_traffic || keep_draining)) {
      running = false;
      return;
    }
    win_begin = win_end;
    if (win_begin > drain_bound) {
      running = false;
      return;
    }
    win_end = std::min(win_begin + lookahead,
                       win_begin < horizon ? horizon : drain_bound + 1);
    // The run is definitely continuing into [win_begin, win_end): save
    // at the first boundary at or past the next checkpoint multiple.
    if (win_begin >= next_ckpt) {
      try {
        save_checkpoint(win_begin);
        next_ckpt = (win_begin / ckpt_every + 1) * ckpt_every;
        if (config_.checkpoint_stop_at >= 0 &&
            win_begin >= config_.checkpoint_stop_at) {
          interrupted = true;
          running = false;
        }
      } catch (...) {
        ckpt_error = std::current_exception();
        running = false;
      }
    }
  };
  std::barrier<decltype(on_window_end)> window_barrier(threads,
                                                       on_window_end);

  /// Queues `entry` at node `at` of `shard` (feed-local: `at` is owned
  /// by `shard`). Mirrors the serial enqueue, with shard-local counters.
  const auto enqueue = [&](Shard& shard, const VoqEntry& entry,
                           hypergraph::Node at, SimTime tick,
                           bool measuring) {
    const std::int32_t slot = routes_.next_slot(at, entry.destination);
    const std::size_t qi = static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot);
    if (queue_cap > 0 &&
        static_cast<std::int64_t>(voq.size(qi)) >= queue_cap) {
      if (measuring) {
        ++shard.dropped;
      }
      --shard.inflight_delta;
      return;
    }
    SimTime ready = tick;
    if (!open) {
      ready = tick +
              timing_.tuning(routes_.next_coupler(at, entry.destination));
    }
    voq.push(qi, TimedVoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops, ready});
  };

  const auto receive = [&](Shard& shard, const Arrival& arrival,
                           SimTime tick) {
    const hypergraph::Node relay =
        routes_.relay(arrival.coupler, arrival.entry.destination);
    if (relay == arrival.entry.destination) {
      if (arrival.measuring) {
        ++shard.delivered;
        if (arrival.entry.created >= warmup_tick) {
          shard.latency.record(latency_slots(tick, arrival.entry.created));
        }
      }
      --shard.inflight_delta;
    } else {
      enqueue(shard, arrival.entry, relay, tick, arrival.measuring);
    }
  };

  const auto worker = [&](int w) {
    Shard& shard = shards[static_cast<std::size_t>(w)];
    const auto& my_couplers = plan.couplers[static_cast<std::size_t>(w)];
    obs::ShardRuntime* const rt =
        rt_on ? &rt_shards[static_cast<std::size_t>(w)] : nullptr;
    const std::int64_t loop_start = rt_on ? obs::runtime_now_ns() : 0;
    while (true) {
      // Cross-shard arrivals were already replayed onto this shard's
      // calendar by the window barrier's completion step.
      if (rt != nullptr) {
        ++rt->windows;
        rt->lookahead_used += win_end - win_begin;
        rt->lookahead_available += lookahead;
        rt->calendar_peak = std::max(
            rt->calendar_peak,
            static_cast<std::int64_t>(shard.calendar.pending()));
      }
      for (SimTime s = win_begin; s < win_end; ++s) {
        const SimTime slot_tick = ticks_from_slots(s);
        const bool measuring = s >= config_.warmup_slots && s < horizon;

        while (!shard.calendar.empty() &&
               shard.calendar.peek().time <= slot_tick) {
          auto event = shard.calendar.pop();
          --shard.events_delta;
          receive(shard, event.payload, event.time);
        }

        if (s < horizon) {
          const std::size_t sender_count =
              traffic_.demand_batch_senders_streams(
                  shard.node_begin, shard.node_end, gen_rng.data(),
                  senders.data() + shard.node_begin);
          if (measuring) {
            shard.offered += static_cast<std::int64_t>(sender_count);
          }
          shard.inflight_delta += static_cast<std::int64_t>(sender_count);
          for (std::size_t i = 0; i < sender_count; ++i) {
            const SenderDemand d =
                senders[static_cast<std::size_t>(shard.node_begin) + i];
            if (config_.recorder != nullptr) {
              config_.recorder->record(s, d.source, d.destination);
            }
            // Deterministic id without a shared counter (the sharded
            // phased convention).
            enqueue(shard,
                    VoqEntry{s * nodes_ + d.source, d.destination,
                             slot_tick, 0},
                    d.source, slot_tick, measuring);
          }
        }

        // Arbitrate the shard's couplers: the request words are rebuilt
        // locally with the eligibility gate applied (occupied AND tuned
        // guard ticks before the boundary) -- feed-locality makes every
        // read shard-private.
        for (const hypergraph::HyperarcId h : my_couplers) {
          const std::size_t hs = static_cast<std::size_t>(h);
          const std::size_t fb =
              static_cast<std::size_t>(feed_.feed_base[hs]);
          const std::size_t source_count =
              static_cast<std::size_t>(feed_.feed_base[hs + 1]) - fb;
          const std::size_t words = (source_count + 63) / 64;
          std::uint64_t any = 0;
          for (std::size_t wi = 0; wi < words; ++wi) {
            shard.request[wi] = 0;
          }
          for (std::size_t si = 0; si < source_count; ++si) {
            const std::size_t qi =
                static_cast<std::size_t>(feed_.feed_qi[fb + si]);
            if (voq.empty(qi)) {
              continue;
            }
            if (!open) {
              const SimTime gate =
                  std::max(voq.front_ready(qi), retune_[qi]);
              if (gate + guard > slot_tick) {
                continue;
              }
            }
            shard.request[si >> 6] |= std::uint64_t{1} << (si & 63);
          }
          for (std::size_t wi = 0; wi < words; ++wi) {
            any |= shard.request[wi];
          }
          if (any == 0) {
            continue;
          }
          const bool collided = detail::pick_winners(
              policy, capacity, source_count, shard.request.data(), words,
              token_[hs], arb_rng[hs], shard.winners, shard.scratch);
          if (collided && measuring) {
            ++shard.collisions;
          }
          const SimTime at =
              slot_tick + kTicksPerSlot + timing_.propagation(h);
          for (std::size_t idx = 0; idx < shard.winners.size(); ++idx) {
            const std::size_t qi = static_cast<std::size_t>(
                feed_.feed_qi[fb + shard.winners[idx]]);
            TimedVoqEntry entry = voq.pop_front(qi);
            if (!open) {
              retune_[qi] = slot_tick + kTicksPerSlot + timing_.tuning(h);
            }
            ++entry.hops;
            if (measuring) {
              ++shard.transmissions;
              ++coupler_success[hs];
            }
            // The global transmission order (slot, coupler, winner) is
            // the sequence key: per-queue pop order then matches the
            // serial engine's single auto-sequenced calendar exactly,
            // whatever shard the event crosses into.
            const std::uint64_t seq =
                (static_cast<std::uint64_t>(s) *
                     static_cast<std::uint64_t>(couplers_) +
                 static_cast<std::uint64_t>(h)) *
                    static_cast<std::uint64_t>(capacity) +
                static_cast<std::uint64_t>(idx);
            Arrival arrival{VoqEntry{entry.id, entry.destination,
                                     entry.created, entry.hops},
                            h, measuring};
            ++shard.events_delta;
            const hypergraph::Node relay =
                routes_.relay(h, entry.destination);
            if (relay != entry.destination &&
                plan.node_owner[static_cast<std::size_t>(relay)] != w) {
              shard
                  .outbox[static_cast<std::size_t>(
                      plan.node_owner[static_cast<std::size_t>(relay)])]
                  .push_back(Mail{at, seq, std::move(arrival)});
            } else {
              // Final deliveries stay on the transmitter's calendar
              // (only counters are touched at the landing).
              shard.calendar.push_keyed(at, seq, std::move(arrival));
            }
          }
        }

        if (tel != nullptr && tel->due(s)) {
          const std::size_t k = static_cast<std::size_t>(s - win_begin);
          obs::ProbeRegistry& frame =
              frames[static_cast<std::size_t>(w) *
                         static_cast<std::size_t>(lookahead) +
                     k];
          const obs::EngineProbes& ids = tel->engine_probes();
          frame.zero();
          frame.set(ids.offered, shard.offered);
          frame.set(ids.delivered, shard.delivered);
          frame.set(ids.transmissions, shard.transmissions);
          frame.set(ids.collisions, shard.collisions);
          frame.set(ids.dropped, shard.dropped);
          for (const hypergraph::HyperarcId h : my_couplers) {
            detail::observe_occupancy(frame, ids.occupancy, feed_, voq, h,
                                      h + 1);
          }
          shard.backlog_snap[k] = shard.inflight_delta;
          shard.events_snap[k] = shard.events_delta;
        }
      }
      if (rt != nullptr) {
        // The outboxes hold exactly this window's cross-shard sends
        // (the previous window's were drained at the last barrier).
        for (const auto& box : shard.outbox) {
          rt->mailbox_msgs_sent += static_cast<std::int64_t>(box.size());
          rt->mailbox_bytes_sent +=
              static_cast<std::int64_t>(box.size() * sizeof(Mail));
        }
        const std::int64_t t0 = obs::runtime_now_ns();
        window_barrier.arrive_and_wait();
        rt->barrier_wait_ns += obs::runtime_now_ns() - t0;
      } else {
        window_barrier.arrive_and_wait();
      }
      if (!running) {
        break;
      }
    }
    if (rt != nullptr) {
      rt->work_ns +=
          obs::runtime_now_ns() - loop_start - rt->barrier_wait_ns;
    }
  };

  const std::int64_t run_start = rt_on ? obs::runtime_now_ns() : 0;
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back(worker, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (rt_on) {
    rts->record_shards("async_sharded", "open_loop",
                       obs::runtime_now_ns() - run_start, rt_shards);
  }

  if (ckpt_error != nullptr) {
    std::rethrow_exception(ckpt_error);
  }

  // Land everything still in flight (the last window's barrier already
  // drained every mailbox onto the calendars). A receive only counts a
  // delivery or re-enqueues at a relay's VOQ -- it never schedules a
  // new event -- so a full per-shard calendar drain empties the system.
  // Per-queue order inside each shard still follows (time, seq); the
  // cross-shard interleaving is irrelevant because a shard's flush
  // touches only its own VOQs and counters. Drill interruptions skip
  // the flush: the checkpoint already captured those events, and the
  // resumed run lands them.
  if (!interrupted) {
    for (int w = 0; w < threads; ++w) {
      Shard& shard = shards[static_cast<std::size_t>(w)];
      while (!shard.calendar.empty()) {
        auto event = shard.calendar.pop();
        receive(shard, event.payload, event.time);
      }
    }
  }

  for (Shard& shard : shards) {
    metrics.offered_packets += shard.offered;
    metrics.delivered_packets += shard.delivered;
    metrics.dropped_packets += shard.dropped;
    metrics.coupler_transmissions += shard.transmissions;
    metrics.collisions += shard.collisions;
    metrics.latency.merge(shard.latency);
    inflight += shard.inflight_delta;
  }
  metrics.backlog = inflight;
  metrics.interrupted = interrupted;
  if (tel != nullptr && !interrupted) {
    windows.finish();
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    reg.set(tel->engine_probes().pending_events, 0);
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, voq, 0, couplers_);
    tel->finish(tel_last);
  }
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics AsyncEngineT<Routes>::run_workload_sharded(
    std::vector<std::int64_t>& coupler_success) {
  const int threads = clamp_threads();
  const ShardPlan plan = plan_shards(threads);
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);
  workload::Workload& load = *config_.workload;
  load.reset();

  // Delivery feedback gates injection every slot, so the conservative
  // window collapses to one slot: the cycle is two barriers per slot
  // (receive+feed, then inject+arbitrate), bit-identical to the serial
  // async workload loop -- same per-node/per-coupler streams, same ids,
  // same (time, seq) receive order per queue.
  std::vector<core::Rng> gen_rng = detail::node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng =
      detail::coupler_streams(config_.seed, couplers_);

  RunMetrics metrics;
  const std::int64_t background_base = load.packet_count();
  const SimTime bound = detail::workload_slot_bound(load);
  const SimTime guard = timing_.guard();
  const bool open = gates_open();
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);
  const Arbitration policy = config_.arbitration;

  TimedVoqArena voq;
  voq.init(static_cast<std::size_t>(voq_base_.back()),
           static_cast<std::size_t>(threads));

  struct Arrival {
    VoqEntry entry;
    hypergraph::HyperarcId coupler = 0;
  };
  struct Mail {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Arrival arrival;
  };

  struct Shard {
    std::int64_t node_begin = 0, node_end = 0;
    std::int64_t offered = 0, delivered = 0;
    std::int64_t transmissions = 0, collisions = 0;
    std::int64_t inflight_delta = 0;
    std::int64_t events_delta = 0;
    SimTime makespan_tick = 0;
    LatencyStats latency;
    CalendarQueue<Arrival> calendar;
    std::vector<std::int64_t> delivered_ids;  ///< workload ids this slot
    std::vector<std::vector<Mail>> outbox;
    std::vector<std::size_t> winners, scratch;
    std::vector<std::uint64_t> request;
  };
  std::vector<Shard> shards(static_cast<std::size_t>(threads));
  const std::size_t req_words = max_mask_words(feed_);
  for (int w = 0; w < threads; ++w) {
    Shard& shard = shards[static_cast<std::size_t>(w)];
    shard.node_begin = plan.node_cut[static_cast<std::size_t>(w)];
    shard.node_end = plan.node_cut[static_cast<std::size_t>(w) + 1];
    shard.outbox.resize(static_cast<std::size_t>(threads));
    shard.request.assign(req_words, 0);
    if (resolve_latency_sketch(config_.latency_mode, nodes_)) {
      shard.latency.use_sketch();
    }
    shard.latency.reserve(
        std::min(load.packet_count() / threads + 1, kLatencyReserveCap));
    for (std::int64_t qi =
             voq_base_[static_cast<std::size_t>(shard.node_begin)];
         qi < voq_base_[static_cast<std::size_t>(shard.node_end)]; ++qi) {
      voq.set_pool(static_cast<std::size_t>(qi),
                   static_cast<std::uint32_t>(w));
    }
  }

  std::vector<SenderDemand> senders(static_cast<std::size_t>(nodes_));

  obs::Telemetry* const tel = config_.telemetry.get();
  obs::WindowSpans windows;
  SimTime tel_last = 0;
  std::vector<obs::ProbeRegistry> frames;
  if (tel != nullptr) {
    if (tel->trace_sink() != nullptr) {
      windows = obs::WindowSpans(tel->trace_sink(), tel->tid(), 0, bound + 1);
    }
    if (tel->sampling()) {
      frames.reserve(static_cast<std::size_t>(threads));
      for (int w = 0; w < threads; ++w) {
        frames.push_back(tel->probes().clone_schema());
      }
    }
  }

  // Runtime channel: as in the open-loop sharded mode, except replays
  // are counted worker-side (each consumer drains its own mailboxes in
  // phase A here).
  obs::RuntimeStats* const rts = config_.runtime_stats.get();
  const bool rt_on = rts != nullptr && rts->active();
  std::vector<obs::ShardRuntime> rt_shards(
      rt_on ? static_cast<std::size_t>(threads) : 0);

  // Slot state shared across workers; mutated only in the barriers'
  // completion steps. `inject` is read-only during phases.
  SimTime now = 0;
  std::int64_t inflight = 0;
  std::int64_t pending_total = 0;
  bool load_done = false;
  bool running = true;
  std::vector<workload::WorkloadPacket> inject;

  // Receive barrier: fold the landings, feed the workload, and decide
  // -- replicating the serial loop's exit order exactly (done+empty
  // stops before the slot counts; a bound hit counts the boundary).
  const auto on_receives_done = [&]() noexcept {
    for (Shard& shard : shards) {
      inflight += shard.inflight_delta;
      shard.inflight_delta = 0;
      pending_total += shard.events_delta;
      shard.events_delta = 0;
      // Feed order across shards is arbitrary but irrelevant: poll()
      // depends only on the delivered SET (workload contract).
      for (const std::int64_t id : shard.delivered_ids) {
        load.delivered(id);
      }
      shard.delivered_ids.clear();
    }
    load_done = load.done();
    if (load_done && inflight == 0) {
      running = false;
      return;
    }
    if (now > bound) {
      ++now;
      running = false;
      return;
    }
    inject.clear();
    if (!load_done) {
      load.poll(now, inject);
    }
  };
  const auto on_slot_end = [&]() noexcept {
    for (Shard& shard : shards) {
      inflight += shard.inflight_delta;
      shard.inflight_delta = 0;
      pending_total += shard.events_delta;
      shard.events_delta = 0;
    }
    if (tel != nullptr) {
      windows.at_slot(now);
      if (tel->due(now)) {
        obs::ProbeRegistry& reg = tel->probes();
        reg.zero();
        for (const obs::ProbeRegistry& frame : frames) {
          reg.accumulate(frame);
        }
        reg.set(tel->engine_probes().backlog, inflight);
        reg.set(tel->engine_probes().pending_events, pending_total);
        tel->sample(now);
      }
      tel_last = now;
    }
    ++now;
  };
  std::barrier<decltype(on_receives_done)> receive_barrier(
      threads, on_receives_done);
  std::barrier<decltype(on_slot_end)> slot_barrier(threads, on_slot_end);

  // queue_capacity is 0 in workload mode (validated): never drops.
  const auto enqueue = [&](Shard& shard, const VoqEntry& entry,
                           hypergraph::Node at, SimTime tick) {
    const std::int32_t slot = routes_.next_slot(at, entry.destination);
    const std::size_t qi = static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot);
    SimTime ready = tick;
    if (!open) {
      ready = tick +
              timing_.tuning(routes_.next_coupler(at, entry.destination));
    }
    voq.push(qi, TimedVoqEntry{entry.id, entry.destination, entry.created,
                               entry.hops, ready});
  };

  const auto receive = [&](Shard& shard, const Arrival& arrival,
                           SimTime tick) {
    const hypergraph::Node relay =
        routes_.relay(arrival.coupler, arrival.entry.destination);
    if (relay == arrival.entry.destination) {
      ++shard.delivered;
      shard.latency.record(latency_slots(tick, arrival.entry.created));
      if (arrival.entry.id < background_base) {
        shard.delivered_ids.push_back(arrival.entry.id);
        shard.makespan_tick = std::max(shard.makespan_tick, tick);
      }
      --shard.inflight_delta;
    } else {
      enqueue(shard, arrival.entry, relay, tick);
    }
  };

  const auto worker = [&](int w) {
    Shard& shard = shards[static_cast<std::size_t>(w)];
    const auto& my_couplers = plan.couplers[static_cast<std::size_t>(w)];
    obs::ShardRuntime* const rt =
        rt_on ? &rt_shards[static_cast<std::size_t>(w)] : nullptr;
    const auto timed_wait = [&](auto& barrier) {
      if (rt == nullptr) {
        barrier.arrive_and_wait();
        return;
      }
      const std::int64_t t0 = obs::runtime_now_ns();
      barrier.arrive_and_wait();
      rt->barrier_wait_ns += obs::runtime_now_ns() - t0;
    };
    const std::int64_t loop_start = rt_on ? obs::runtime_now_ns() : 0;
    while (true) {
      const SimTime slot_tick = ticks_from_slots(now);

      // Phase A: drain the mailboxes (written in the previous slot's
      // phase B), then land everything due at this boundary.
      for (int p = 0; p < threads; ++p) {
        auto& box = shards[static_cast<std::size_t>(p)]
                        .outbox[static_cast<std::size_t>(w)];
        if (rt != nullptr) {
          rt->mailbox_msgs_replayed +=
              static_cast<std::int64_t>(box.size());
        }
        for (Mail& mail : box) {
          shard.calendar.push_keyed(mail.time, mail.seq,
                                    std::move(mail.arrival));
        }
        box.clear();
      }
      if (rt != nullptr) {
        // The feedback-gated window is one slot wide by construction.
        ++rt->windows;
        ++rt->lookahead_used;
        ++rt->lookahead_available;
        rt->calendar_peak = std::max(
            rt->calendar_peak,
            static_cast<std::int64_t>(shard.calendar.pending()));
      }
      while (!shard.calendar.empty() &&
             shard.calendar.peek().time <= slot_tick) {
        auto event = shard.calendar.pop();
        --shard.events_delta;
        receive(shard, event.payload, event.time);
      }
      timed_wait(receive_barrier);
      if (!running) {
        break;
      }

      // Phase B: inject the shard's slice of the eligible workload
      // packets, then background traffic, then arbitrate.
      for (const workload::WorkloadPacket& packet : inject) {
        if (packet.source < shard.node_begin ||
            packet.source >= shard.node_end) {
          continue;
        }
        ++shard.offered;
        ++shard.inflight_delta;
        enqueue(shard, VoqEntry{packet.id, packet.destination, slot_tick, 0},
                packet.source, slot_tick);
      }
      if (!load_done) {
        const std::size_t sender_count =
            traffic_.demand_batch_senders_streams(
                shard.node_begin, shard.node_end, gen_rng.data(),
                senders.data() + shard.node_begin);
        shard.offered += static_cast<std::int64_t>(sender_count);
        shard.inflight_delta += static_cast<std::int64_t>(sender_count);
        for (std::size_t i = 0; i < sender_count; ++i) {
          const SenderDemand d =
              senders[static_cast<std::size_t>(shard.node_begin) + i];
          if (config_.recorder != nullptr) {
            config_.recorder->record(now, d.source, d.destination);
          }
          enqueue(shard,
                  VoqEntry{background_base + now * nodes_ + d.source,
                           d.destination, slot_tick, 0},
                  d.source, slot_tick);
        }
      }

      for (const hypergraph::HyperarcId h : my_couplers) {
        const std::size_t hs = static_cast<std::size_t>(h);
        const std::size_t fb = static_cast<std::size_t>(feed_.feed_base[hs]);
        const std::size_t source_count =
            static_cast<std::size_t>(feed_.feed_base[hs + 1]) - fb;
        const std::size_t words = (source_count + 63) / 64;
        std::uint64_t any = 0;
        for (std::size_t wi = 0; wi < words; ++wi) {
          shard.request[wi] = 0;
        }
        for (std::size_t si = 0; si < source_count; ++si) {
          const std::size_t qi =
              static_cast<std::size_t>(feed_.feed_qi[fb + si]);
          if (voq.empty(qi)) {
            continue;
          }
          if (!open) {
            const SimTime gate = std::max(voq.front_ready(qi), retune_[qi]);
            if (gate + guard > slot_tick) {
              continue;
            }
          }
          shard.request[si >> 6] |= std::uint64_t{1} << (si & 63);
        }
        for (std::size_t wi = 0; wi < words; ++wi) {
          any |= shard.request[wi];
        }
        if (any == 0) {
          continue;
        }
        const bool collided = detail::pick_winners(
            policy, capacity, source_count, shard.request.data(), words,
            token_[hs], arb_rng[hs], shard.winners, shard.scratch);
        if (collided) {
          ++shard.collisions;
        }
        const SimTime at = slot_tick + kTicksPerSlot + timing_.propagation(h);
        for (std::size_t idx = 0; idx < shard.winners.size(); ++idx) {
          const std::size_t qi = static_cast<std::size_t>(
              feed_.feed_qi[fb + shard.winners[idx]]);
          TimedVoqEntry entry = voq.pop_front(qi);
          if (!open) {
            retune_[qi] = slot_tick + kTicksPerSlot + timing_.tuning(h);
          }
          ++entry.hops;
          ++shard.transmissions;
          ++coupler_success[hs];
          const std::uint64_t seq =
              (static_cast<std::uint64_t>(now) *
                   static_cast<std::uint64_t>(couplers_) +
               static_cast<std::uint64_t>(h)) *
                  static_cast<std::uint64_t>(capacity) +
              static_cast<std::uint64_t>(idx);
          Arrival arrival{
              VoqEntry{entry.id, entry.destination, entry.created,
                       entry.hops},
              h};
          ++shard.events_delta;
          const hypergraph::Node relay = routes_.relay(h, entry.destination);
          if (relay != entry.destination &&
              plan.node_owner[static_cast<std::size_t>(relay)] != w) {
            shard
                .outbox[static_cast<std::size_t>(
                    plan.node_owner[static_cast<std::size_t>(relay)])]
                .push_back(Mail{at, seq, std::move(arrival)});
          } else {
            shard.calendar.push_keyed(at, seq, std::move(arrival));
          }
        }
      }

      if (tel != nullptr && tel->due(now)) {
        // Feed-locality makes the snapshot shard-private, so no extra
        // visibility barrier is needed (unlike the phased sharded mode,
        // whose coupler feeds span other shards' nodes).
        obs::ProbeRegistry& frame = frames[static_cast<std::size_t>(w)];
        const obs::EngineProbes& ids = tel->engine_probes();
        frame.zero();
        frame.set(ids.offered, shard.offered);
        frame.set(ids.delivered, shard.delivered);
        frame.set(ids.transmissions, shard.transmissions);
        frame.set(ids.collisions, shard.collisions);
        for (const hypergraph::HyperarcId h : my_couplers) {
          detail::observe_occupancy(frame, ids.occupancy, feed_, voq, h,
                                    h + 1);
        }
      }
      if (rt != nullptr) {
        // The outboxes hold exactly this slot's phase-B sends (the
        // consumers cleared them in their phase A).
        for (const auto& box : shard.outbox) {
          rt->mailbox_msgs_sent += static_cast<std::int64_t>(box.size());
          rt->mailbox_bytes_sent +=
              static_cast<std::int64_t>(box.size() * sizeof(Mail));
        }
      }
      timed_wait(slot_barrier);
    }
    if (rt != nullptr) {
      rt->work_ns +=
          obs::runtime_now_ns() - loop_start - rt->barrier_wait_ns;
    }
  };

  const std::int64_t run_start = rt_on ? obs::runtime_now_ns() : 0;
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back(worker, w);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  if (rt_on) {
    rts->record_shards("async_sharded", "workload",
                       obs::runtime_now_ns() - run_start, rt_shards);
  }

  // No final flush: the serial workload loop leaves undeliverable
  // events pending too and reports them as backlog.
  metrics.slots = now;
  SimTime makespan_tick = 0;
  for (Shard& shard : shards) {
    metrics.offered_packets += shard.offered;
    metrics.delivered_packets += shard.delivered;
    metrics.coupler_transmissions += shard.transmissions;
    metrics.collisions += shard.collisions;
    metrics.latency.merge(shard.latency);
    makespan_tick = std::max(makespan_tick, shard.makespan_tick);
  }
  metrics.makespan_slots = (makespan_tick + kTicksPerSlot - 1) / kTicksPerSlot;
  metrics.backlog = inflight;
  if (tel != nullptr) {
    windows.finish();
    detail::fill_metric_probes(*tel, metrics, inflight);
    obs::ProbeRegistry& reg = tel->probes();
    reg.set(tel->engine_probes().pending_events, pending_total);
    const obs::ProbeId hist = tel->engine_probes().occupancy;
    reg.clear_histogram(hist);
    detail::observe_occupancy(reg, hist, feed_, voq, 0, couplers_);
    tel->finish(tel_last);
  }
  return metrics;
}

template class AsyncEngineT<routing::CompiledRoutes>;
template class AsyncEngineT<routing::CompressedRoutes>;

}  // namespace otis::sim
