// Tests for the discrete-event core and the slotted OPS network
// simulator: event ordering, packet conservation, latency on single-hop
// POPS, arbitration policies, determinism and saturation behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/error.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/stack_routing.hpp"
#include "sim/event_queue.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"

namespace otis::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(5, [&] { order.push_back(5); });
  q.schedule_at(1, [&] { order.push_back(1); });
  q.schedule_at(3, [&] { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(q.now(), 5);
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2, [&] { order.push_back(0); });
  q.schedule_at(2, [&] { order.push_back(1); });
  q.schedule_at(2, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1, [&] { ++fired; });
  q.schedule_at(10, [&] { ++fired; });
  EXPECT_EQ(q.run_until(5), 1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 5);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) {
      q.schedule_in(1, tick);
    }
  };
  q.schedule_at(0, tick);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 4);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule_at(3, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(1, [] {}), core::Error);
}

TEST(EventQueue, RejectsPastSchedulingFromInsideAnAction) {
  // The clock advances as events execute: an action scheduling before
  // its own firing time must be refused, not silently reordered.
  EventQueue q;
  bool threw = false;
  q.schedule_at(7, [&] {
    try {
      q.schedule_at(6, [] {});
    } catch (const core::Error&) {
      threw = true;
    }
    q.schedule_at(7, [] {});  // equal to now() is fine (FIFO after us)
  });
  q.run_all();
  EXPECT_TRUE(threw);
  EXPECT_EQ(q.now(), 7);
}

TEST(EventQueue, RejectsNegativeDelayAndKeepsClockSemantics) {
  EventQueue q;
  EXPECT_THROW(q.schedule_in(-1, [] {}), core::Error);
  // run_until advances the clock to the bound even with nothing left;
  // run_all leaves it at the last executed event.
  q.schedule_at(2, [] {});
  EXPECT_EQ(q.run_until(10), 1);
  EXPECT_EQ(q.now(), 10);
  q.schedule_at(12, [] {});
  EXPECT_EQ(q.run_all(), 1);
  EXPECT_EQ(q.now(), 12);
  EXPECT_TRUE(q.empty());
}

TEST(LatencyStats, MeanMaxPercentile) {
  LatencyStats stats;
  for (std::int64_t v : {1, 2, 3, 4, 100}) {
    stats.record(v);
  }
  EXPECT_EQ(stats.count(), 5);
  EXPECT_DOUBLE_EQ(stats.mean(), 22.0);
  EXPECT_EQ(stats.max(), 100);
  EXPECT_EQ(stats.percentile(0.0), 1);
  EXPECT_EQ(stats.percentile(1.0), 100);
  EXPECT_EQ(stats.percentile(0.5), 3);
}

TEST(LatencyStats, EmptyIsZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.percentile(0.95), 0);
}

TEST(Traffic, UniformRespectsLoadRoughly) {
  UniformTraffic traffic(10, 0.3);
  core::Rng rng(5);
  int packets = 0;
  const int slots = 20000;
  for (int i = 0; i < slots; ++i) {
    TrafficDemand d = traffic.demand(i % 10, rng);
    packets += d.has_packet ? 1 : 0;
    if (d.has_packet) {
      EXPECT_NE(d.destination, i % 10);
      EXPECT_GE(d.destination, 0);
      EXPECT_LT(d.destination, 10);
    }
  }
  EXPECT_NEAR(static_cast<double>(packets) / slots, 0.3, 0.02);
}

TEST(Traffic, HotspotSkewsDestinations) {
  HotspotTraffic traffic(16, 1.0, 3, 0.5);
  core::Rng rng(6);
  int to_hot = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    TrafficDemand d = traffic.demand(0, rng);
    ASSERT_TRUE(d.has_packet);
    to_hot += d.destination == 3 ? 1 : 0;
  }
  // 0.5 direct + 0.5 * (1/15) uniform share.
  EXPECT_NEAR(static_cast<double>(to_hot) / trials, 0.5 + 0.5 / 15, 0.03);
}

TEST(Traffic, PermutationHasNoFixedPointsAndIsStable) {
  PermutationTraffic traffic(9, 1.0, 123);
  for (std::int64_t v = 0; v < 9; ++v) {
    EXPECT_NE(traffic.permutation()[static_cast<std::size_t>(v)], v);
  }
  core::Rng rng(7);
  TrafficDemand first = traffic.demand(4, rng);
  TrafficDemand second = traffic.demand(4, rng);
  ASSERT_TRUE(first.has_packet);
  EXPECT_EQ(first.destination, second.destination);
}

TEST(Traffic, BurstyMeanLoadMatchesStationaryChain) {
  // enter_on = exit_on = 0.1 -> P(on) = 0.5; peak 0.6 -> mean 0.3.
  BurstyTraffic traffic(8, 0.6, 0.1, 0.1);
  EXPECT_NEAR(traffic.mean_load(), 0.3, 1e-12);
  core::Rng rng(44);
  std::int64_t packets = 0;
  const int slots = 40000;
  for (int i = 0; i < slots; ++i) {
    for (std::int64_t node = 0; node < 8; ++node) {
      packets += traffic.demand(node, rng).has_packet ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(packets) / (8.0 * slots), 0.3, 0.03);
}

TEST(Traffic, BurstyIsActuallyBursty) {
  // Long bursts / long idles: consecutive-slot arrivals should be much
  // more correlated than Bernoulli at the same mean load.
  BurstyTraffic traffic(2, 1.0, 0.02, 0.02);  // mean load 0.5, burst ~50
  core::Rng rng(45);
  int runs = 0;
  bool last = false;
  const int slots = 20000;
  int ones = 0;
  for (int i = 0; i < slots; ++i) {
    const bool now = traffic.demand(0, rng).has_packet;
    ones += now ? 1 : 0;
    if (now != last) {
      ++runs;
    }
    last = now;
  }
  // Bernoulli(0.5) would give ~slots/2 runs; bursts give far fewer.
  EXPECT_LT(runs, slots / 4);
  EXPECT_GT(ones, slots / 5);
}

TEST(Traffic, BurstyValidatesParameters) {
  EXPECT_THROW(BurstyTraffic(4, 1.5, 0.1, 0.1), core::Error);
  EXPECT_THROW(BurstyTraffic(4, 0.5, 0.0, 0.1), core::Error);
  EXPECT_THROW(BurstyTraffic(0, 0.5, 0.1, 0.1), core::Error);
}

TEST(Traffic, SaturationAlwaysHasPacket) {
  SaturationTraffic traffic(5);
  core::Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(traffic.demand(i % 5, rng).has_packet);
  }
  EXPECT_TRUE(traffic.is_saturating());
}

/// Helper: build a simulator over POPS(t, g) with uniform traffic on the
/// default (phased) engine via compiled routes.
RunMetrics run_pops(std::int64_t t, std::int64_t g, double load,
                    Arbitration arb, std::uint64_t seed,
                    std::int64_t measure = 1500) {
  hypergraph::Pops pops(t, g);
  SimConfig config;
  config.arbitration = arb;
  config.warmup_slots = 100;
  config.measure_slots = measure;
  config.seed = seed;
  config.drain = false;
  OpsNetworkSim sim(pops.stack(), routing::compile_pops_routes(pops),
                    std::make_unique<UniformTraffic>(pops.processor_count(),
                                                     load),
                    config);
  return sim.run();
}

TEST(OpsNetworkSim, PacketConservationOnPops) {
  RunMetrics m = run_pops(4, 2, 0.2, Arbitration::kTokenRoundRobin, 11);
  // Every offered packet is delivered, dropped, or still queued. (The
  // simulator also delivers warmup leftovers; delivered during the
  // window can thus slightly exceed offered-minus-backlog, so compare
  // with a slack of the warmup backlog.)
  EXPECT_GT(m.offered_packets, 0);
  EXPECT_GE(m.delivered_packets + m.backlog + m.dropped_packets,
            m.offered_packets);
}

TEST(OpsNetworkSim, LowLoadPopsDeliversEverythingInOneSlot) {
  // At very low load contention is negligible: latency ~= 1 slot.
  RunMetrics m = run_pops(4, 4, 0.01, Arbitration::kTokenRoundRobin, 3,
                          4000);
  EXPECT_GT(m.latency.count(), 0);
  EXPECT_LT(m.latency.mean(), 1.5);
  EXPECT_GT(static_cast<double>(m.delivered_packets) /
                static_cast<double>(m.offered_packets),
            0.95);
}

TEST(OpsNetworkSim, DeterministicForSameSeed) {
  RunMetrics a = run_pops(4, 2, 0.4, Arbitration::kRandomWinner, 77);
  RunMetrics b = run_pops(4, 2, 0.4, Arbitration::kRandomWinner, 77);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.coupler_transmissions, b.coupler_transmissions);
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
}

TEST(OpsNetworkSim, SeedsChangeOutcome) {
  RunMetrics a = run_pops(4, 2, 0.4, Arbitration::kRandomWinner, 1);
  RunMetrics b = run_pops(4, 2, 0.4, Arbitration::kRandomWinner, 2);
  EXPECT_NE(a.offered_packets, b.offered_packets);
}

TEST(OpsNetworkSim, CouplerThroughputCapRespected) {
  // A coupler delivers at most one packet per slot: total successful
  // transmissions <= couplers * slots, and per-coupler counts too.
  hypergraph::Pops pops(8, 2);
  routing::PopsRouter router(pops);
  RoutingHooks hooks;
  hooks.next_coupler = [&](hypergraph::Node c, hypergraph::Node d) {
    return router.next_coupler(c, d);
  };
  hooks.relay_on = [](hypergraph::HyperarcId, hypergraph::Node d) {
    return d;
  };
  SimConfig config;
  config.warmup_slots = 50;
  config.measure_slots = 500;
  config.seed = 21;
  OpsNetworkSim sim(pops.stack(), hooks,
                    std::make_unique<SaturationTraffic>(16), config);
  RunMetrics m = sim.run();
  EXPECT_LE(m.coupler_transmissions, 4 * 500);
  for (std::int64_t c : sim.coupler_successes()) {
    EXPECT_LE(c, 500);
  }
  // Under saturation the couplers should be busy nearly every slot with
  // token arbitration.
  EXPECT_GT(m.coupler_utilization(4), 0.9);
}

TEST(OpsNetworkSim, AlohaCollidesTokenDoesNot) {
  RunMetrics token = run_pops(8, 2, 0.5, Arbitration::kTokenRoundRobin, 5);
  RunMetrics aloha = run_pops(8, 2, 0.5, Arbitration::kSlottedAloha, 5);
  EXPECT_EQ(token.collisions, 0);
  EXPECT_GT(aloha.collisions, 0);
  EXPECT_GE(token.delivered_packets, aloha.delivered_packets);
}

TEST(OpsNetworkSim, MultiHopOnStackKautzDeliversWithCorrectHopLatency) {
  hypergraph::StackKautz sk(2, 2, 2);
  routing::StackKautzRouter router(sk);
  RoutingHooks hooks;
  hooks.next_coupler = [&](hypergraph::Node c, hypergraph::Node d) {
    return router.next_coupler(c, d);
  };
  hooks.relay_on = [&](hypergraph::HyperarcId h, hypergraph::Node d) {
    return router.relay_on(h, d);
  };
  SimConfig config;
  config.warmup_slots = 100;
  config.measure_slots = 2000;
  config.seed = 9;
  OpsNetworkSim sim(sk.stack(), hooks,
                    std::make_unique<UniformTraffic>(sk.processor_count(),
                                                     0.02),
                    config);
  RunMetrics m = sim.run();
  EXPECT_GT(m.delivered_packets, 0);
  // At near-zero load latency approaches the mean hop count, which lies
  // in [1, k]; with k = 2 the mean must sit strictly between.
  EXPECT_GT(m.latency.mean(), 0.9);
  EXPECT_LT(m.latency.mean(), 3.0);
}

TEST(OpsNetworkSim, QueueCapacityDropsUnderOverload) {
  hypergraph::Pops pops(8, 1);  // one group: all traffic shares 1 coupler
  routing::PopsRouter router(pops);
  RoutingHooks hooks;
  hooks.next_coupler = [&](hypergraph::Node c, hypergraph::Node d) {
    return router.next_coupler(c, d);
  };
  hooks.relay_on = [](hypergraph::HyperarcId, hypergraph::Node d) {
    return d;
  };
  SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = 500;
  config.seed = 4;
  config.queue_capacity = 2;
  OpsNetworkSim sim(pops.stack(), hooks,
                    std::make_unique<SaturationTraffic>(8), config);
  RunMetrics m = sim.run();
  EXPECT_GT(m.dropped_packets, 0);
  // The single coupler still only carries <= 1 packet/slot.
  EXPECT_LE(m.delivered_packets, 500);
}

TEST(OpsNetworkSim, MultipleWavelengthsRaiseCouplerCapacity) {
  // W = 2 on a saturated single-group POPS: the lone coupler can now
  // carry two packets per slot.
  auto run = [](std::int64_t wavelengths) {
    hypergraph::Pops pops(8, 1);
    routing::PopsRouter router(pops);
    RoutingHooks hooks;
    hooks.next_coupler = [&router](hypergraph::Node c, hypergraph::Node d) {
      return router.next_coupler(c, d);
    };
    hooks.relay_on = [](hypergraph::HyperarcId, hypergraph::Node d) {
      return d;
    };
    SimConfig config;
    config.warmup_slots = 50;
    config.measure_slots = 500;
    config.seed = 77;
    config.wavelengths = wavelengths;
    OpsNetworkSim sim(pops.stack(), hooks,
                      std::make_unique<SaturationTraffic>(8), config);
    return sim.run();
  };
  RunMetrics w1 = run(1);
  RunMetrics w2 = run(2);
  EXPECT_LE(w1.coupler_transmissions, 500);
  EXPECT_GT(w2.coupler_transmissions, 900);  // ~2 per slot
  EXPECT_LE(w2.coupler_transmissions, 1000);
  EXPECT_GT(w2.delivered_packets, w1.delivered_packets);
}

TEST(OpsNetworkSim, WavelengthsReduceAlohaCollisions) {
  RunMetrics w1 = run_pops(8, 2, 0.6, Arbitration::kSlottedAloha, 5);
  // Same setup but W = 4: build manually since run_pops fixes W = 1.
  hypergraph::Pops pops(8, 2);
  routing::PopsRouter router(pops);
  RoutingHooks hooks;
  hooks.next_coupler = [&](hypergraph::Node c, hypergraph::Node d) {
    return router.next_coupler(c, d);
  };
  hooks.relay_on = [](hypergraph::HyperarcId, hypergraph::Node d) {
    return d;
  };
  SimConfig config;
  config.arbitration = Arbitration::kSlottedAloha;
  config.warmup_slots = 100;
  config.measure_slots = 1500;
  config.seed = 5;
  config.wavelengths = 4;
  OpsNetworkSim sim(pops.stack(), hooks,
                    std::make_unique<UniformTraffic>(16, 0.6), config);
  RunMetrics w4 = sim.run();
  EXPECT_LT(w4.collisions, w1.collisions);
}

TEST(Experiment, LoadSweepAggregatesAndIsMonotoneAtLowLoad) {
  TrialFactory factory = [](double load, std::uint64_t seed) {
    return run_pops(4, 2, load, Arbitration::kTokenRoundRobin, seed, 800);
  };
  auto points = run_load_sweep(factory, {0.05, 0.2}, 8, 4, {1, 2, 3}, 2);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].trials, 3);
  EXPECT_GT(points[1].throughput_per_node, points[0].throughput_per_node);
  EXPECT_GT(points[0].delivered_fraction, 0.9);
}

TEST(Experiment, RequiresSeeds) {
  TrialFactory factory = [](double, std::uint64_t) { return RunMetrics{}; };
  EXPECT_THROW(run_load_sweep(factory, {0.1}, 8, 4, {}), core::Error);
}

TEST(Experiment, SweepPointMergeMatchesDirectMoments) {
  // Three single-trial points with throughputs {1, 2, 6}: mean 3,
  // population variance ((4 + 1 + 9) / 3) = 14/3.
  SweepPoint a;
  a.load = 0.5;
  a.throughput_per_node = 1.0;
  a.trials = 1;
  SweepPoint b = a;
  b.throughput_per_node = 2.0;
  SweepPoint c = a;
  c.throughput_per_node = 6.0;

  SweepPoint left_fold = a;
  left_fold.merge(b);
  left_fold.merge(c);
  EXPECT_EQ(left_fold.trials, 3);
  EXPECT_NEAR(left_fold.throughput_per_node, 3.0, 1e-12);
  EXPECT_NEAR(left_fold.throughput_stddev, std::sqrt(14.0 / 3.0), 1e-9);

  // Trial-count-weighted: merging (a+b) into c equals any other order.
  SweepPoint pair = a;
  pair.merge(b);
  SweepPoint right_fold = c;
  right_fold.merge(pair);
  EXPECT_NEAR(right_fold.throughput_per_node, left_fold.throughput_per_node,
              1e-12);
  EXPECT_NEAR(right_fold.throughput_stddev, left_fold.throughput_stddev,
              1e-9);

  // Merging into an empty point copies the other side.
  SweepPoint empty;
  empty.merge(left_fold);
  EXPECT_EQ(empty.trials, 3);
  EXPECT_NEAR(empty.throughput_stddev, left_fold.throughput_stddev, 1e-12);
}

TEST(Experiment, LoadSweepReportsStddevAcrossSeeds) {
  TrialFactory factory = [](double load, std::uint64_t seed) {
    return run_pops(4, 2, load, Arbitration::kTokenRoundRobin, seed, 800);
  };
  auto points = run_load_sweep(factory, {0.3}, 8, 4, {1, 2, 3, 4}, 2);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].trials, 4);
  // Different seeds give different trials, so the spread is positive and
  // small relative to the mean at a stable operating point.
  EXPECT_GT(points[0].throughput_stddev, 0.0);
  EXPECT_LT(points[0].throughput_stddev, points[0].throughput_per_node);
  EXPECT_GE(points[0].mean_latency_stddev, 0.0);
}

}  // namespace
}  // namespace otis::sim
