// Fig. 8 of the paper: interconnecting a group of 6 processors to the
// inputs of 4 OPS couplers with one OTIS(6,4) plus 4 optical
// multiplexers. Regenerates the wiring table (which multiplexer each
// transmitter reaches) and machine-checks the construction's invariant:
// multiplexer c collects transmitter slot c of every processor.

#include <iostream>

#include "core/table.hpp"
#include "designs/group_block.hpp"
#include "optics/netlist.hpp"
#include "optics/trace.hpp"

int main() {
  std::cout << "[Fig. 8] group of 6 processors -> 4 multiplexers via "
               "OTIS(6,4)\n\n";
  otis::optics::Netlist netlist;
  otis::designs::GroupTxBlock block =
      otis::designs::build_group_tx(netlist, 6, 4, "grp");

  // Terminate the multiplexers with receivers so we can trace.
  std::vector<otis::optics::ComponentId> probe(4);
  for (std::int64_t c = 0; c < 4; ++c) {
    probe[static_cast<std::size_t>(c)] =
        netlist.add_receiver("probe-mux" + std::to_string(c));
    netlist.connect({block.mux[static_cast<std::size_t>(c)], 0},
                    {probe[static_cast<std::size_t>(c)], 0});
  }

  otis::core::Table table({"processor", "tx slot", "reaches multiplexer"});
  bool ok = true;
  for (std::int64_t j = 0; j < 6; ++j) {
    for (std::int64_t c = 0; c < 4; ++c) {
      auto endpoints = otis::optics::trace_from_transmitter(
          netlist, block.tx[static_cast<std::size_t>(j)]
                       [static_cast<std::size_t>(c)],
          {});
      ok = ok && endpoints.size() == 1;
      std::int64_t mux_hit = -1;
      for (std::int64_t m = 0; m < 4; ++m) {
        if (!endpoints.empty() &&
            endpoints[0].receiver == probe[static_cast<std::size_t>(m)]) {
          mux_hit = m;
        }
      }
      table.add(j, c, mux_hit);
      ok = ok && mux_hit == c;  // slot c feeds multiplexer c
    }
  }
  table.print(std::cout);

  std::cout << "\ncomponents: 24 transmitters, 1 OTIS(6,4), 4 multiplexers "
               "(fan-in 6)\n"
            << "invariant (tx slot c -> multiplexer c for all processors): "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
