#pragma once
/// \file spec.hpp
/// Declarative experiment-campaign specifications.
///
/// The paper's results are grids of simulation cells -- topology x
/// arbitration x load x wavelengths x seed. A CampaignSpec names every
/// axis of one grid declaratively (in code or as a JSON file, see
/// parse_campaign_spec); the grid/runner layers expand and execute it.
///
/// TopologySpec is the bridge between the declarative world and the
/// concrete network classes: CompiledTopology::build constructs the
/// hypergraph (StackKautz / Pops / StackImaseItoh) and bakes its routing
/// into one CompiledRoutes, which the runner shares via shared_ptr across
/// every cell of that topology -- the one-compile-per-topology contract
/// the ROADMAP's batch-experiment item asks for. Builds are counted by a
/// process-wide counter so tests can assert that contract.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "collectives/schedule.hpp"
#include "core/work_pool.hpp"
#include "hypergraph/stack_graph.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "sim/ops_network.hpp"

namespace otis::campaign {

/// One topology axis value: which network family plus its parameters.
struct TopologySpec {
  enum class Kind {
    kStackKautz,      ///< SK(s, d, k)
    kPops,            ///< POPS(t, g)
    kStackImaseItoh,  ///< SII(s, d, n)
  };

  Kind kind = Kind::kStackKautz;
  std::int64_t stacking = 1;  ///< s (SK/SII) or group size t (POPS)
  std::int64_t degree = 0;    ///< d (SK/SII); unused for POPS
  std::int64_t order = 0;     ///< diameter k (SK), group count g/n (POPS/SII)

  [[nodiscard]] static TopologySpec stack_kautz(std::int64_t s, std::int64_t d,
                                                std::int64_t k);
  [[nodiscard]] static TopologySpec pops(std::int64_t t, std::int64_t g);
  [[nodiscard]] static TopologySpec stack_imase_itoh(std::int64_t s,
                                                     std::int64_t d,
                                                     std::int64_t n);

  /// Canonical label, e.g. "SK(4,3,2)", "POPS(6,12)", "SII(4,2,12)".
  /// Doubles as the topology part of cell IDs, so it must stay stable.
  [[nodiscard]] std::string label() const;

  /// Processor count N by arithmetic alone -- SK: s*d^(k-1)*(d+1),
  /// POPS: t*g, SII: s*n -- so RouteTable::kAuto can resolve before the
  /// (possibly huge) network is ever built.
  [[nodiscard]] std::int64_t processor_count() const;

  [[nodiscard]] bool operator==(const TopologySpec& other) const noexcept {
    return kind == other.kind && stacking == other.stacking &&
           degree == other.degree && order == other.order;
  }
};

/// A topology built and routed once, shared read-only by many cells.
class CompiledTopology {
 public:
  /// Constructs the network and compiles the requested routing-table
  /// representations -- at most one compile per representation per call;
  /// bumps topology_compile_count() once per call. At large N request
  /// only the compressed table: the dense one is O(N^2) and is never
  /// materialized unless asked for. A non-null `pool` spreads the table
  /// fill across its workers (output bit-identical to serial); the
  /// campaign runner passes its own otherwise-idle pool here.
  [[nodiscard]] static std::shared_ptr<const CompiledTopology> build(
      const TopologySpec& spec, bool want_dense = true,
      bool want_compressed = false, core::WorkStealingPool* pool = nullptr);

  [[nodiscard]] const TopologySpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] const hypergraph::StackGraph& stack() const noexcept {
    return *stack_;
  }
  /// Dense tables; null unless requested at build().
  [[nodiscard]] const std::shared_ptr<const routing::CompiledRoutes>& routes()
      const noexcept {
    return routes_;
  }
  /// Group-factored tables; null unless requested at build().
  [[nodiscard]] const std::shared_ptr<const routing::CompressedRoutes>&
  compressed_routes() const noexcept {
    return compressed_routes_;
  }
  [[nodiscard]] std::int64_t processor_count() const noexcept {
    return processors_;
  }
  [[nodiscard]] std::int64_t coupler_count() const noexcept {
    return couplers_;
  }

  /// True when this topology ships analytic collective schedules
  /// (POPS and stack-Kautz; stack-Imase-Itoh has none yet).
  [[nodiscard]] bool has_collective_schedules() const noexcept {
    return static_cast<bool>(schedule_builder_);
  }
  /// The analytic slot schedule for a gossip (all-to-all) or, when
  /// `gossip` is false, a one-to-all broadcast from `root`. Throws
  /// core::Error when has_collective_schedules() is false.
  [[nodiscard]] collectives::SlotSchedule collective_schedule(
      bool gossip, hypergraph::Node root) const;

 private:
  CompiledTopology() = default;

  TopologySpec spec_;
  std::string label_;
  std::shared_ptr<const void> owner_;  ///< keeps the network object alive
  const hypergraph::StackGraph* stack_ = nullptr;
  std::shared_ptr<const routing::CompiledRoutes> routes_;
  std::shared_ptr<const routing::CompressedRoutes> compressed_routes_;
  /// Typed access to the network for schedule generation without
  /// widening owner_ beyond void (null for families without schedules).
  std::function<collectives::SlotSchedule(bool gossip, hypergraph::Node root)>
      schedule_builder_;
  std::int64_t processors_ = 0;
  std::int64_t couplers_ = 0;
};

/// Process-wide count of CompiledTopology::build calls (== routing-table
/// compiles). Tests reset it, run a campaign, and assert one per topology.
[[nodiscard]] std::int64_t topology_compile_count() noexcept;
void reset_topology_compile_count() noexcept;

/// Traffic families a campaign can drive (see sim/traffic.hpp).
enum class TrafficKind {
  kUniform,      ///< Bernoulli(load), uniform destinations
  kSaturation,   ///< always-backlogged; the load axis is ignored
  kHotspot,      ///< Bernoulli(load), a fraction aimed at one hot node
  kPermutation,  ///< Bernoulli(load) to a fixed seed-drawn permutation
  kBursty,       ///< on/off Markov arrivals; the load axis is the peak
};

[[nodiscard]] const char* traffic_kind_name(TrafficKind kind);
/// Inverse of traffic_kind_name; throws core::Error on unknown names.
[[nodiscard]] TrafficKind parse_traffic_kind(const std::string& name);

/// One traffic axis value: a family plus its shape parameters. Shape
/// values are per axis entry (not spec-level scalars), so one grid can
/// sweep hotspot fractions or burst lengths side by side. Converts
/// implicitly from TrafficKind with the default shape.
struct TrafficSpec {
  TrafficKind kind = TrafficKind::kUniform;
  /// kHotspot shape.
  std::int64_t hotspot_node = 0;
  double hotspot_fraction = 0.2;
  /// kBursty shape: ON entry/exit probabilities per slot; mean burst =
  /// 1/exit, mean idle = 1/enter.
  double bursty_enter_on = 0.05;
  double bursty_exit_on = 0.2;

  TrafficSpec() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): axis-literal ergonomics
  TrafficSpec(TrafficKind k) : kind(k) {}

  /// Canonical label: the plain family name for shape-free families,
  /// the family plus its shape for hotspot/bursty -- e.g. "uniform",
  /// "hotspot(n0,f0.2000)", "bursty(on0.0500,off0.2000)". Doubles as
  /// the traffic part of cell IDs, so it must stay stable.
  [[nodiscard]] std::string label() const;

  /// Throws core::Error on out-of-range shape values.
  void validate() const;

  [[nodiscard]] bool operator==(const TrafficSpec&) const noexcept = default;
};

/// Inverse of sim::route_table_name; throws core::Error on unknown names.
[[nodiscard]] sim::RouteTable parse_route_table(const std::string& name);

/// Inverse of sim::latency_mode_name; throws core::Error on unknown names.
[[nodiscard]] sim::LatencyMode parse_latency_mode(const std::string& name);

/// Workload families a campaign can drive (closed-loop; see
/// workload/workload.hpp). kNone keeps the cell open-loop -- the
/// classic fixed-window run. Every other kind switches the cell to
/// run-to-completion with a makespan metric; the traffic axis then
/// provides *background* load alongside the workload (use loads [0.0]
/// for uncontended collectives).
enum class WorkloadKind {
  kNone,      ///< open loop (traffic axis only)
  kOneToAll,  ///< compiled broadcast schedule (POPS / stack-Kautz)
  kGossip,    ///< compiled all-to-all gossip schedule (POPS / stack-Kautz)
  kBsp,       ///< bulk-synchronous phase exchange (any topology)
  kReduce,    ///< arity-ary combining tree (any topology)
  kGather,    ///< incast: everyone sends to the root (any topology)
  kTrace,     ///< replay a recorded packet trace file (any topology)
};

[[nodiscard]] const char* workload_kind_name(WorkloadKind kind);
/// Inverse of workload_kind_name; throws core::Error on unknown names.
[[nodiscard]] WorkloadKind parse_workload_kind(const std::string& name);

/// One workload axis value: a family plus its shape parameters.
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kNone;
  std::int64_t root = 0;      ///< one_to_all / reduce / gather
  std::int64_t phases = 4;    ///< bsp
  std::int64_t shift = 1;     ///< bsp
  std::int64_t arity = 2;     ///< reduce
  std::string trace_file;     ///< trace: path to a Trace::load-able file

  WorkloadSpec() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): axis-literal ergonomics
  WorkloadSpec(WorkloadKind k) : kind(k) {}

  /// Canonical label, e.g. "none", "one_to_all(r0)", "gossip",
  /// "bsp(p4,s1)", "reduce(r0,a2)", "gather(r0)",
  /// "trace(file.trace)" (basename only, so IDs survive directory
  /// moves). Doubles as the workload part of cell IDs, so it must stay
  /// stable.
  [[nodiscard]] std::string label() const;

  /// Throws core::Error on out-of-range shape values (kTrace requires a
  /// non-empty file).
  void validate() const;

  [[nodiscard]] bool operator==(const WorkloadSpec&) const noexcept = default;
};

/// Per-cell execution override, matched by topology label. Overrides
/// change *how* matched cells run (engine, threads, routing-table
/// representation), never *what* they simulate -- route-table choice and
/// engine threads are result-invariant, but note that phased and sharded
/// engines are distinct (equally valid) random universes, exactly as
/// with the spec-level engine field. Matching overrides layer in order
/// (later entries win per field); a pinned route_table collapses the
/// topology's routes axis to that one value.
struct CellOverride {
  std::string topology;  ///< TopologySpec::label() to match, e.g. "SK(6,3,2)"
  std::optional<sim::Engine> engine;
  std::optional<int> engine_threads;
  std::optional<sim::RouteTable> route_table;
};

/// The declarative experiment grid. Cells = topologies x arbitrations x
/// traffics x loads x wavelengths x route tables x timings x workloads
/// x seeds, every combination simulated once.
struct CampaignSpec {
  std::string name = "campaign";
  std::vector<TopologySpec> topologies;
  std::vector<sim::Arbitration> arbitrations{
      sim::Arbitration::kTokenRoundRobin};
  std::vector<TrafficSpec> traffics{TrafficSpec{}};
  /// Workload axis: kNone cells run the classic open-loop window; other
  /// kinds run closed-loop to completion (makespan column). Schedule
  /// kinds (one_to_all/gossip) require every topology in the grid to be
  /// POPS or stack-Kautz -- validate() rejects the mix early.
  std::vector<WorkloadSpec> workloads{WorkloadSpec{}};
  std::vector<double> loads{0.5};
  std::vector<std::int64_t> wavelengths{1};
  /// Routing-table axis: result-invariant by construction (compressed
  /// tables answer every query identically), so listing more than one
  /// value is for memory/speed comparison, not for new physics.
  std::vector<sim::RouteTable> route_tables{sim::RouteTable::kAuto};
  /// Timing axis: named skew profiles resolved to concrete tick values
  /// (sim/timing_model.hpp). Cells whose timing is not slot-aligned run
  /// on the async engine regardless of the `engine` field -- the
  /// slotted engines cannot honour sub-slot skew.
  std::vector<sim::TimingConfig> timings{sim::TimingConfig{}};
  std::vector<std::uint64_t> seeds{1};

  /// Default shapes applied to traffic entries given as plain strings
  /// in the JSON form ("traffic": ["hotspot"]); structured entries
  /// carry their own shape values.
  std::int64_t hotspot_node = 0;
  double hotspot_fraction = 0.2;
  double bursty_enter_on = 0.05;
  double bursty_exit_on = 0.2;

  /// Per-cell simulator window (see SimConfig).
  std::int64_t warmup_slots = 200;
  std::int64_t measure_slots = 1000;
  std::int64_t queue_capacity = 0;

  /// Latency representation every cell records with
  /// (SimConfig::latency_mode): "auto" keeps exact full-sample
  /// percentiles on small cells and flips to the O(1)-memory sketch at
  /// sim::kAutoLatencySketchNodes nodes, "full"/"sketch" force a mode.
  sim::LatencyMode latency_stats = sim::LatencyMode::kAuto;

  /// Intra-cell checkpoint stride in slots; 0 disables. With an out_dir
  /// set, every open-loop cell serializes its engine state to
  /// out_dir/checkpoints/cell-<index>.ckpt at this stride and deletes
  /// the blob when the cell completes; a --resume run restores
  /// interrupted cells mid-window instead of re-running them from
  /// slot 0 (results stay bit-identical either way).
  std::int64_t checkpoint_every = 0;

  /// Engine every cell runs on; engine_threads feeds SimConfig.threads
  /// for kSharded cells (results are thread-count invariant by design).
  sim::Engine engine = sim::Engine::kPhased;
  int engine_threads = 1;

  /// Telemetry attached to every cell (all-defaults = off). Relative
  /// output paths resolve against the runner's out_dir; the runner
  /// shares one timeseries writer and one trace sink across all cells,
  /// tagging rows/spans with the cell id.
  obs::TelemetryConfig telemetry;

  /// Runtime-introspection JSONL (obs/runtime_stats.hpp), the
  /// NONdeterministic channel: per-shard barrier/window stats from the
  /// sharded engines plus the runner's pool-worker utilization, all
  /// streamed to this path (relative paths resolve against out_dir).
  /// Kept apart from `telemetry` internals so the deterministic
  /// timeseries bytes never mix with wall-clock rows; empty = off.
  std::string runtime_stats_path;

  /// Per-topology execution overrides applied during grid expansion.
  std::vector<CellOverride> overrides;

  /// Total cell count of the expanded grid (overrides that pin a route
  /// table collapse that topology's routes axis to one value).
  [[nodiscard]] std::int64_t cell_count() const;

  /// Throws core::Error when any axis is empty, a window is invalid, or
  /// an override names no topology in the grid.
  void validate() const;
};

/// Parses a spec from its JSON form. Schema (README "Running campaigns"):
/// {
///   "name": "paper-grid",
///   "topologies": [{"kind": "stack_kautz", "s": 4, "d": 3, "k": 2},
///                  {"kind": "pops", "t": 6, "g": 12},
///                  {"kind": "stack_imase_itoh", "s": 4, "d": 2, "n": 12}],
///   "arbitrations": ["token", "random", "aloha"],
///   "traffic": ["uniform",
///               {"kind": "hotspot", "node": 0, "fraction": [0.1, 0.3]},
///               {"kind": "bursty", "enter_on": 0.05,
///                "exit_on": [0.1, 0.2]}],
///   "loads": [0.1, 0.5, 0.9],
///   "wavelengths": [1, 2, 4],
///   "routes": ["auto"],
///   "timings": ["none",
///               {"profile": "const", "tuning": [256, 512],
///                "propagation": 128, "guard": 0},
///               {"profile": "level", "tuning": 256, "propagation": 64,
///                "level_skew": 128}],
///   "workloads": ["none",
///                 {"kind": "one_to_all", "root": 0},
///                 "gossip",
///                 {"kind": "bsp", "phases": [2, 4], "shift": 1},
///                 {"kind": "reduce", "root": 0, "arity": 2},
///                 {"kind": "gather", "root": 0},
///                 {"kind": "trace", "file": "uniform.trace"}],
///   "seeds": [1, 2, 3],
///   "hotspot_node": 0, "hotspot_fraction": 0.2,
///   "bursty_enter_on": 0.05, "bursty_exit_on": 0.2,
///   "warmup_slots": 200, "measure_slots": 1000, "queue_capacity": 0,
///   "engine": "phased", "engine_threads": 1,
///   "latency_stats": "auto", "checkpoint_every": 0,
///   "telemetry": {"sample_period": 64, "timeseries": "timeseries.jsonl",
///                 "trace": "campaign.trace.json",
///                 "runtime_stats": "runtime.jsonl",
///                 "probes": ["delivered", "backlog"]},
///   "overrides": [{"topology": "SK(4,3,2)", "engine": "sharded",
///                  "engine_threads": 4, "routes": "compressed"}]
/// }
/// Every field except "topologies" has the CampaignSpec default.
/// "traffic" and "routes" accept a single string as well as an array
/// (the single-string "traffic" form is the pre-axis schema). Traffic
/// entries may be structured objects carrying per-entry shape values; a
/// shape value given as an array sweeps that parameter into one axis
/// entry per value. Timing entries are "none" or an object whose
/// delays are sub-slot ticks (sim::kTicksPerSlot per slot); "tuning"
/// accepts an array to sweep the tuning latency. Workload entries are
/// plain kind names or structured objects; "phases" (bsp) and "arity"
/// (reduce) accept sweep arrays.
[[nodiscard]] CampaignSpec parse_campaign_spec(const std::string& json_text);

/// parse_campaign_spec over the contents of `path`.
[[nodiscard]] CampaignSpec load_campaign_spec(const std::string& path);

}  // namespace otis::campaign
