// Workload subsystem tests:
//  - DagWorkload/WaveWorkload semantics: dependency gating, cycle and
//    range rejection, delivery-order independence of poll();
//  - ScheduleWorkload: THE acceptance property -- executing a compiled
//    collective schedule on the slot engines yields a simulated
//    makespan EQUAL to the analytic slot count in the uncontended
//    single-wavelength slot-aligned case, and >= it under contention
//    (aloha retries, background load, timing skew);
//  - cross-engine bit-parity: workload-driven runs are bit-identical
//    across phased/sharded/async engines, dense/compressed route tables
//    and thread counts {1, 2, 3, 5, 8}, for every arbitration policy,
//    with and without background traffic;
//  - synthetic kernels (bsp, reduce tree, gather incast) run to
//    completion with sane makespans;
//  - traces: recorder canonical form, binary/JSONL round-trips, replay
//    parity, and the malformed-trace error paths (truncated file,
//    out-of-range node, non-monotone slots).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "collectives/pops_collectives.hpp"
#include "collectives/stack_kautz_collectives.hpp"
#include "core/error.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "sim/experiment.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"
#include "workload/kernels.hpp"
#include "workload/schedule_workload.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace otis::workload {
namespace {

using hypergraph::Node;

void expect_identical(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.coupler_transmissions, b.coupler_transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.makespan_slots, b.makespan_slots);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.percentile(0.5), b.latency.percentile(0.5));
  EXPECT_EQ(a.latency.percentile(0.95), b.latency.percentile(0.95));
}

constexpr sim::Arbitration kAllPolicies[] = {
    sim::Arbitration::kTokenRoundRobin, sim::Arbitration::kRandomWinner,
    sim::Arbitration::kSlottedAloha};

/// A scratch file that cleans up after itself.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path.c_str()); }
};

// ------------------------------------------------------- DagWorkload

TEST(DagWorkloadTest, DependenciesGateEligibility) {
  // 0 -> 1 -> 2 chained; 3 independent.
  DagWorkload dag(4,
                  {{0, 0, 1}, {0, 1, 2}, {0, 2, 3}, {0, 3, 0}},
                  {{}, {0}, {1}, {}});
  EXPECT_EQ(dag.packet_count(), 4);
  std::vector<WorkloadPacket> out;
  dag.poll(0, out);
  ASSERT_EQ(out.size(), 2u);  // 0 and 3, sorted by id
  EXPECT_EQ(out[0].id, 0);
  EXPECT_EQ(out[1].id, 3);
  out.clear();
  dag.poll(1, out);
  EXPECT_TRUE(out.empty());  // nothing delivered yet
  dag.delivered(3);
  dag.delivered(0);
  out.clear();
  dag.poll(2, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 1);
  EXPECT_FALSE(dag.done());
  dag.delivered(1);
  out.clear();
  dag.poll(3, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2);
  dag.delivered(2);
  EXPECT_TRUE(dag.done());

  // reset() restores the initial frontier.
  dag.reset();
  EXPECT_FALSE(dag.done());
  out.clear();
  dag.poll(0, out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(DagWorkloadTest, PollOrderIndependentOfDeliveryOrder) {
  // 2 and 3 both unlock when {0, 1} are delivered.
  const auto build = [] {
    return DagWorkload(4, {{0, 0, 1}, {0, 1, 2}, {0, 2, 3}, {0, 3, 0}},
                       {{}, {}, {0, 1}, {0, 1}});
  };
  DagWorkload a = build();
  DagWorkload b = build();
  std::vector<WorkloadPacket> out;
  a.poll(0, out);
  out.clear();
  b.poll(0, out);
  out.clear();
  a.delivered(0);
  a.delivered(1);
  b.delivered(1);
  b.delivered(0);
  std::vector<WorkloadPacket> from_a, from_b;
  a.poll(1, from_a);
  b.poll(1, from_b);
  EXPECT_EQ(from_a, from_b);
  ASSERT_EQ(from_a.size(), 2u);
  EXPECT_EQ(from_a[0].id, 2);
  EXPECT_EQ(from_a[1].id, 3);
}

TEST(DagWorkloadTest, RejectsCyclesAndBadInput) {
  EXPECT_THROW(DagWorkload(2, {{0, 0, 1}, {0, 1, 0}}, {{1}, {0}}),
               core::Error);  // 2-cycle
  EXPECT_THROW(DagWorkload(2, {{0, 0, 1}}, {{0}}), core::Error);  // self-dep
  EXPECT_THROW(DagWorkload(2, {{0, 0, 1}}, {{7}}), core::Error);  // range
  EXPECT_THROW(DagWorkload(2, {{0, 0, 5}}, {{}}), core::Error);  // endpoint
  EXPECT_THROW(DagWorkload(2, {{0, 1, 1}}, {{}}), core::Error);  // src==dst
  EXPECT_THROW(DagWorkload(2, {{0, 0, 1}}, {}), core::Error);  // deps size
}

TEST(WaveWorkloadTest, WavesBarrierOnFullDelivery) {
  WaveWorkload waves(4, {{{0, 0, 1}, {0, 2, 3}}, {{0, 1, 0}}});
  EXPECT_EQ(waves.packet_count(), 3);
  EXPECT_EQ(waves.wave_count(), 2);
  std::vector<WorkloadPacket> out;
  waves.poll(0, out);
  ASSERT_EQ(out.size(), 2u);
  waves.delivered(0);
  out.clear();
  waves.poll(1, out);
  EXPECT_TRUE(out.empty());  // wave 0 not fully delivered
  waves.delivered(1);
  out.clear();
  waves.poll(2, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2);
  EXPECT_EQ(out[0].source, 1);
  waves.delivered(2);
  EXPECT_TRUE(waves.done());

  EXPECT_THROW(WaveWorkload(4, {{{0, 0, 1}}, {}}), core::Error);  // empty wave
}

// --------------------------------------------------- schedule workloads

struct WorkloadRun {
  sim::RunMetrics metrics;
  std::vector<std::int64_t> coupler_success;
};

/// A test network with both routing-table representations compiled
/// once and shared across every run.
struct Net {
  const hypergraph::StackGraph& stack;
  std::shared_ptr<const routing::CompiledRoutes> dense;
  std::shared_ptr<const routing::CompressedRoutes> compressed;
};

Net make_net(const hypergraph::StackKautz& sk) {
  return Net{sk.stack(),
             std::make_shared<const routing::CompiledRoutes>(
                 routing::compile_stack_kautz_routes(sk)),
             std::make_shared<const routing::CompressedRoutes>(
                 routing::compress_stack_kautz_routes(sk))};
}

Net make_net(const hypergraph::Pops& pops) {
  return Net{pops.stack(),
             std::make_shared<const routing::CompiledRoutes>(
                 routing::compile_pops_routes(pops)),
             std::make_shared<const routing::CompressedRoutes>(
                 routing::compress_pops_routes(pops))};
}

/// One closed-loop run. `background_load` drives UniformTraffic beside
/// the workload (0 = pure).
WorkloadRun run_workload(const Net& net, std::shared_ptr<Workload> load,
                         sim::SimConfig config, double background_load = 0.0,
                         bool compressed = false) {
  config.workload = std::move(load);
  config.warmup_slots = 0;
  config.measure_slots = 1;  // ignored: run to completion
  auto traffic = std::make_unique<sim::UniformTraffic>(
      net.stack.node_count(), background_load);
  WorkloadRun run;
  if (compressed) {
    sim::OpsNetworkSim sim(net.stack, net.compressed, std::move(traffic),
                           config);
    run.metrics = sim.run();
    run.coupler_success = sim.coupler_successes();
  } else {
    sim::OpsNetworkSim sim(net.stack, net.dense, std::move(traffic), config);
    run.metrics = sim.run();
    run.coupler_success = sim.coupler_successes();
  }
  return run;
}

TEST(ScheduleWorkloadTest, UncontendedMakespanEqualsAnalyticSlotCount) {
  // The acceptance property: under token arbitration, W = 1, no
  // background traffic and slot-aligned timing, every wave clears in
  // exactly one slot, so the simulated makespan IS the analytic bound.
  {
    hypergraph::Pops pops(6, 12);
    const Net net = make_net(pops);
    auto one = schedule_workload(pops.stack(),
                                 collectives::pops_one_to_all(pops, 0));
    auto gossip =
        schedule_workload(pops.stack(), collectives::pops_gossip(pops));
    const std::int64_t one_packets = one->packet_count();
    const std::int64_t gossip_packets = gossip->packet_count();
    WorkloadRun run = run_workload(net, std::move(one), {});
    EXPECT_EQ(run.metrics.makespan_slots, 1);
    EXPECT_EQ(run.metrics.delivered_packets, one_packets);
    run = run_workload(net, std::move(gossip), {});
    EXPECT_EQ(run.metrics.makespan_slots, 6);  // t slots
    EXPECT_EQ(run.metrics.delivered_packets, gossip_packets);
    EXPECT_EQ(run.metrics.backlog, 0);
  }
  {
    hypergraph::StackKautz sk(4, 3, 2);
    const Net net = make_net(sk);
    auto one =
        schedule_workload(sk.stack(), collectives::stack_kautz_one_to_all(sk, 0));
    auto gossip =
        schedule_workload(sk.stack(), collectives::stack_kautz_gossip(sk));
    WorkloadRun run = run_workload(net, std::move(one), {});
    EXPECT_EQ(run.metrics.makespan_slots, 2);  // diameter k
    run = run_workload(net, std::move(gossip), {});
    EXPECT_EQ(run.metrics.makespan_slots, 4 + 2);  // s + k
    EXPECT_EQ(run.metrics.backlog, 0);
  }
}

TEST(ScheduleWorkloadTest, ContentionOnlyRaisesTheMakespan) {
  hypergraph::StackKautz sk(4, 3, 2);
  const Net net = make_net(sk);
  const auto gossip = [&] {
    return schedule_workload(sk.stack(), collectives::stack_kautz_gossip(sk));
  };
  const std::int64_t bound =
      collectives::stack_kautz_gossip(sk).slot_count();

  // Aloha retries push waves past the bound but still complete.
  sim::SimConfig aloha;
  aloha.arbitration = sim::Arbitration::kSlottedAloha;
  WorkloadRun run = run_workload(net, gossip(), aloha);
  EXPECT_GT(run.metrics.makespan_slots, bound);
  EXPECT_EQ(run.metrics.backlog, 0);

  // Extra wavelengths cannot beat a conflict-free schedule's bound.
  sim::SimConfig wdm;
  wdm.wavelengths = 4;
  run = run_workload(net, gossip(), wdm);
  EXPECT_EQ(run.metrics.makespan_slots, bound);

  // Background traffic contends for the same couplers: makespan >=
  // bound, and the workload still completes.
  run = run_workload(net, gossip(), {}, /*background_load=*/0.5);
  EXPECT_GE(run.metrics.makespan_slots, bound);
  EXPECT_EQ(run.metrics.backlog, 0);
  EXPECT_GT(run.metrics.offered_packets,
            collectives::stack_kautz_gossip(sk).transmission_count());

  // Timing skew stretches the critical path on the async engine.
  sim::SimConfig skewed;
  skewed.engine = sim::Engine::kAsync;
  skewed.timing.profile = sim::SkewProfile::kConstant;
  skewed.timing.tuning_ticks = 512;
  skewed.timing.propagation_ticks = 128;
  run = run_workload(net, gossip(), skewed);
  EXPECT_GT(run.metrics.makespan_slots, bound);
  EXPECT_EQ(run.metrics.backlog, 0);
}

// ------------------------------------------------ cross-engine parity

TEST(WorkloadParityTest, BitIdenticalAcrossEnginesTablesAndThreads) {
  hypergraph::StackKautz sk(4, 3, 2);
  const Net net = make_net(sk);
  const auto gossip = [&] {
    return std::shared_ptr<Workload>(
        schedule_workload(sk.stack(), collectives::stack_kautz_gossip(sk)));
  };
  for (sim::Arbitration arbitration : kAllPolicies) {
    for (double background : {0.0, 0.4}) {
      sim::SimConfig config;
      config.arbitration = arbitration;
      config.seed = 99;
      const WorkloadRun reference =
          run_workload(net, gossip(), config, background);
      EXPECT_EQ(reference.metrics.backlog, 0);
      for (const bool compressed : {false, true}) {
        {
          sim::SimConfig async_config = config;
          async_config.engine = sim::Engine::kAsync;
          const WorkloadRun run = run_workload(net, gossip(), async_config,
                                               background, compressed);
          expect_identical(reference.metrics, run.metrics);
          EXPECT_EQ(reference.coupler_success, run.coupler_success);
        }
        for (const int threads : {1, 2, 3, 5, 8}) {
          sim::SimConfig sharded = config;
          sharded.engine = sim::Engine::kSharded;
          sharded.threads = threads;
          const WorkloadRun run = run_workload(net, gossip(), sharded,
                                               background, compressed);
          expect_identical(reference.metrics, run.metrics);
          EXPECT_EQ(reference.coupler_success, run.coupler_success);
        }
        if (compressed) {
          const WorkloadRun run = run_workload(net, gossip(), config,
                                               background,
                                               /*compressed=*/true);
          expect_identical(reference.metrics, run.metrics);
          EXPECT_EQ(reference.coupler_success, run.coupler_success);
        }
      }
    }
  }
}

// --------------------------------------------------- synthetic kernels

TEST(KernelTest, BspExchangeRunsPhaseBarriers) {
  hypergraph::Pops pops(4, 6);  // 24 nodes
  const Net net = make_net(pops);
  auto bsp = bsp_exchange(pops.processor_count(), /*phases=*/3);
  EXPECT_EQ(bsp->packet_count(), 3 * 24);
  const WorkloadRun run = run_workload(net, std::move(bsp), {});
  EXPECT_EQ(run.metrics.delivered_packets, 3 * 24);
  EXPECT_EQ(run.metrics.backlog, 0);
  // Phase barriers: at least one slot per phase.
  EXPECT_GE(run.metrics.makespan_slots, 3);
}

TEST(KernelTest, ReduceTreeRespectsDepth) {
  hypergraph::StackKautz sk(4, 3, 2);  // 48 nodes
  const Net net = make_net(sk);
  auto reduce = reduce_tree(sk.processor_count(), /*arity=*/2, /*root=*/5);
  EXPECT_EQ(reduce->packet_count(), 47);
  const WorkloadRun run = run_workload(net, std::move(reduce), {});
  EXPECT_EQ(run.metrics.delivered_packets, 47);
  EXPECT_EQ(run.metrics.backlog, 0);
  // A binary tree over 48 ranks is 5 levels deep; interior sends wait
  // for their children, so the makespan is at least the depth.
  EXPECT_GE(run.metrics.makespan_slots, 5);
}

TEST(KernelTest, GatherIncastCompletes) {
  hypergraph::Pops pops(4, 6);
  const Net net = make_net(pops);
  auto gather = gather_incast(pops.processor_count(), /*root=*/0);
  EXPECT_EQ(gather->packet_count(), 23);
  const WorkloadRun run = run_workload(net, std::move(gather), {});
  EXPECT_EQ(run.metrics.delivered_packets, 23);
  EXPECT_EQ(run.metrics.backlog, 0);
  // 23 packets squeeze into the root's group couplers: real incast
  // serialization, well above the 1-slot uncontended latency.
  EXPECT_GT(run.metrics.makespan_slots, 1);
}

// --------------------------------------------------------- validation

TEST(WorkloadConfigTest, RejectsUnsupportedConfigurations) {
  hypergraph::Pops pops(4, 6);
  auto routes = std::make_shared<const routing::CompiledRoutes>(
      routing::compile_pops_routes(pops));
  const auto make = [&](sim::SimConfig config) {
    config.workload = gather_incast(pops.processor_count(), 0);
    sim::OpsNetworkSim sim(
        pops.stack(), routes,
        std::make_unique<sim::UniformTraffic>(pops.processor_count(), 0.0),
        config);
  };
  {
    sim::SimConfig config;
    config.engine = sim::Engine::kEventQueue;
    EXPECT_THROW(make(config), core::Error);  // no delivery feedback
  }
  {
    sim::SimConfig config;
    config.queue_capacity = 8;
    EXPECT_THROW(make(config), core::Error);  // drops would deadlock
  }
  {
    // Node-count mismatch.
    sim::SimConfig config;
    config.workload = gather_incast(7, 0);
    EXPECT_THROW(
        sim::OpsNetworkSim(
            pops.stack(), routes,
            std::make_unique<sim::UniformTraffic>(pops.processor_count(),
                                                  0.0),
            config),
        core::Error);
  }
}

TEST(WorkloadMetricsTest, MakespanFlowsIntoSweepPoint) {
  sim::RunMetrics metrics;
  metrics.slots = 10;
  metrics.makespan_slots = 7;
  const sim::SweepPoint point =
      sim::SweepPoint::from_trial(metrics, 0.0, 24, 36);
  EXPECT_DOUBLE_EQ(point.makespan, 7.0);
  sim::SweepPoint other = point;
  other.makespan = 9.0;
  sim::SweepPoint merged = point;
  merged.merge(other);
  EXPECT_DOUBLE_EQ(merged.makespan, 8.0);
  EXPECT_GT(merged.makespan_stddev, 0.0);
  EXPECT_EQ(merged.trials, 2);
}

// -------------------------------------------------------------- traces

TEST(TraceTest, RecorderIsCanonicalAcrossEngines) {
  hypergraph::StackKautz sk(4, 3, 2);
  auto routes = std::make_shared<const routing::CompiledRoutes>(
      routing::compile_stack_kautz_routes(sk));
  const auto record = [&](sim::Engine engine) {
    auto recorder =
        std::make_shared<TraceRecorder>(sk.processor_count());
    sim::SimConfig config;
    config.warmup_slots = 0;
    config.measure_slots = 100;
    config.seed = 5;
    config.engine = engine;
    config.recorder = recorder;
    sim::OpsNetworkSim sim(
        sk.stack(), routes,
        std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.5),
        config);
    sim.run();
    return recorder->trace();
  };
  const Trace phased = record(sim::Engine::kPhased);
  EXPECT_GT(phased.entries.size(), 0u);
  phased.validate();
  // The async engine consumes the same RNG stream in its slot-aligned
  // limit, so its recorded trace is the identical object.
  EXPECT_EQ(phased, record(sim::Engine::kAsync));
  // The sharded engine is a different (equally valid) universe but its
  // trace is still canonical.
  const auto sharded = record(sim::Engine::kSharded);
  sharded.validate();
}

TEST(TraceTest, SerializationRoundTripsExactly) {
  Trace trace;
  trace.nodes = 24;
  trace.entries = {{0, 3, 7}, {0, 5, 1}, {2, 0, 23}, {2, 3, 4}, {9, 5, 0}};
  trace.validate();
  TempFile binary("otis_trace_test.bin");
  TempFile jsonl("otis_trace_test.jsonl");
  trace.save_binary(binary.path);
  trace.save_jsonl(jsonl.path);
  EXPECT_EQ(Trace::load(binary.path), trace);
  EXPECT_EQ(Trace::load(jsonl.path), trace);
}

TEST(TraceTest, MalformedTracesAreRejected) {
  // Out-of-range node.
  Trace bad;
  bad.nodes = 4;
  bad.entries = {{0, 1, 9}};
  EXPECT_THROW(bad.validate(), core::Error);
  // Non-monotone generation slots.
  bad.entries = {{3, 0, 1}, {1, 0, 1}};
  EXPECT_THROW(bad.validate(), core::Error);
  // Duplicate (slot, source).
  bad.entries = {{1, 0, 1}, {1, 0, 2}};
  EXPECT_THROW(bad.validate(), core::Error);
  // Source == destination.
  bad.entries = {{0, 2, 2}};
  EXPECT_THROW(bad.validate(), core::Error);

  // Truncated binary file: chop the last 8 bytes off a valid trace.
  Trace good;
  good.nodes = 4;
  good.entries = {{0, 0, 1}, {1, 2, 3}};
  TempFile file("otis_trace_truncated.bin");
  good.save_binary(file.path);
  const auto full_size = std::filesystem::file_size(file.path);
  std::filesystem::resize_file(file.path, full_size - 8);
  EXPECT_THROW(Trace::load(file.path), core::Error);
  // A JSONL header announcing more entries than the file holds.
  TempFile jsonl("otis_trace_truncated.jsonl");
  {
    std::ofstream out(jsonl.path);
    out << "{\"nodes\": 4, \"entries\": 3}\n"
        << "{\"slot\": 0, \"src\": 0, \"dst\": 1}\n";
  }
  EXPECT_THROW(Trace::load(jsonl.path), core::Error);
}

TEST(TraceTest, ReplayIsBitIdenticalAcrossEnginesAndThreads) {
  hypergraph::StackKautz sk(4, 3, 2);
  auto routes = std::make_shared<const routing::CompiledRoutes>(
      routing::compile_stack_kautz_routes(sk));
  // Record a uniform run on the phased engine.
  auto recorder = std::make_shared<TraceRecorder>(sk.processor_count());
  {
    sim::SimConfig config;
    config.warmup_slots = 0;
    config.measure_slots = 120;
    config.seed = 17;
    config.recorder = recorder;
    sim::OpsNetworkSim sim(
        sk.stack(), routes,
        std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.4),
        config);
    sim.run();
  }
  const Trace trace = recorder->trace();
  ASSERT_GT(trace.entries.size(), 0u);

  const Net net = make_net(sk);
  const auto replay = [&](sim::Engine engine, int threads, bool compressed) {
    sim::SimConfig config;
    config.engine = engine;
    config.threads = threads;
    config.seed = 17;
    return run_workload(net, std::make_shared<TraceWorkload>(trace), config,
                        0.0, compressed);
  };
  const WorkloadRun reference = replay(sim::Engine::kPhased, 1, false);
  EXPECT_EQ(reference.metrics.delivered_packets,
            static_cast<std::int64_t>(trace.entries.size()));
  EXPECT_EQ(reference.metrics.backlog, 0);
  for (const bool compressed : {false, true}) {
    for (const int threads : {1, 2, 3, 5, 8}) {
      const WorkloadRun run =
          replay(sim::Engine::kSharded, threads, compressed);
      expect_identical(reference.metrics, run.metrics);
      EXPECT_EQ(reference.coupler_success, run.coupler_success);
    }
    const WorkloadRun async_run = replay(sim::Engine::kAsync, 1, compressed);
    expect_identical(reference.metrics, async_run.metrics);
    EXPECT_EQ(reference.coupler_success, async_run.coupler_success);
  }
}

TEST(TraceTest, ReplayIgnoresMeasureSlotsAndRunsToCompletion) {
  // A trace whose generation slots extend far beyond measure_slots
  // must still replay fully: workload runs have no fixed window.
  hypergraph::Pops pops(4, 6);
  const Net net = make_net(pops);
  Trace trace;
  trace.nodes = pops.processor_count();
  trace.entries = {{0, 0, 6}, {50, 3, 9}, {400, 11, 2}};
  const WorkloadRun run =
      run_workload(net, std::make_shared<TraceWorkload>(trace), {});
  EXPECT_EQ(run.metrics.delivered_packets, 3);
  EXPECT_EQ(run.metrics.backlog, 0);
  EXPECT_GE(run.metrics.makespan_slots, 401);
}

}  // namespace
}  // namespace otis::workload
