#!/usr/bin/env python3
"""Render one campaign directory into a self-contained HTML report.

Usage: report.py OUT_DIR [--output report.html]
       report.py --csv results.csv --timeseries ts.jsonl \
                 --runtime runtime.jsonl --output report.html

Joins the three campaign artifacts -- results.csv (final per-cell
metrics), the deterministic timeseries JSONL (per-cell throughput and
backlog trajectories) and the nondeterministic runtime JSONL (per-shard
barrier/window stats, pool-worker utilization) -- into one HTML file
with inline SVG charts. Stdlib only, no network, no external assets:
the file can be archived as a CI artifact and opened anywhere.

Sections:
  * campaign summary table (cells, topologies, throughput extremes)
  * throughput + backlog trajectories per cell (timeseries channel)
  * per-shard stall heat per cell (runtime channel, shard rows)
  * pool-worker utilization bars (runtime channel, workers rows)

Input discipline: a file that exists must parse. Any malformed line --
bad JSON, a sample row before its schema row, a shard row missing its
counters, a CSV without the cell_id column -- aborts with a message on
stderr and exit status 1; CI relies on that to catch writer
regressions. Unknown row types and extra fields are tolerated (the
channels are allowed to grow), and a missing optional file only drops
its section. results.csv is required.
"""

import argparse
import csv
import html
import json
import os
import sys


class ReportError(Exception):
    """Malformed input; main() turns it into exit status 1."""


# --------------------------------------------------------------- loaders

def load_results_csv(path):
    """results.csv rows as dicts; numeric fields coerced."""
    try:
        with open(path, "r", encoding="utf-8", newline="") as fh:
            reader = csv.DictReader(fh)
            rows = list(reader)
    except OSError as exc:
        raise ReportError(f"cannot read {path}: {exc}")
    if not rows:
        raise ReportError(f"{path}: no result rows")
    for row in rows:
        if not row.get("cell_id"):
            raise ReportError(f"{path}: row without cell_id: {row}")
        for field in ("load", "throughput_per_node", "mean_latency",
                      "p95_latency", "delivered_fraction"):
            try:
                row[field] = float(row[field])
            except (KeyError, TypeError, ValueError):
                raise ReportError(
                    f"{path}: cell {row['cell_id']} has no numeric "
                    f"{field!r} column")
        for field in ("backlog", "slots", "nodes"):
            try:
                row[field] = int(row[field])
            except (KeyError, TypeError, ValueError):
                raise ReportError(
                    f"{path}: cell {row['cell_id']} has no integer "
                    f"{field!r} column")
    return rows


def parse_jsonl(path):
    """Yields (line_number, object) for every non-empty line."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except OSError as exc:
        raise ReportError(f"cannot read {path}: {exc}")
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            obj = json.loads(line)
        except ValueError as exc:
            raise ReportError(f"{path}:{number}: bad JSON ({exc})")
        if not isinstance(obj, dict):
            raise ReportError(f"{path}:{number}: row is not an object")
        yield number, obj


def load_timeseries(path):
    """Per-cell sample trajectories from the deterministic channel.

    Returns {cell: {"period": int, "samples": [(slot, delivered,
    backlog)]}}. Cells sampled without a label land under "".
    """
    cells = {}
    seen_schema = set()
    for number, row in parse_jsonl(path):
        kind = row.get("type")
        cell = row.get("cell", "")
        if kind == "schema":
            seen_schema.add(cell)
            cells.setdefault(cell, {"period": row.get("sample_period", 0),
                                    "samples": []})
        elif kind == "sample":
            if cell not in seen_schema:
                raise ReportError(
                    f"{path}:{number}: sample row for cell {cell!r} "
                    f"before its schema row")
            if "slot" not in row:
                raise ReportError(f"{path}:{number}: sample without slot")
            cells[cell]["samples"].append(
                (int(row["slot"]), int(row.get("delivered", 0)),
                 int(row.get("backlog", 0))))
        # Unknown row types tolerated: the channel may grow.
    return cells


RUNTIME_SHARD_FIELDS = ("barrier_wait_ns", "work_ns", "windows",
                        "lookahead_used", "lookahead_available",
                        "mailbox_msgs_sent", "mailbox_bytes_sent",
                        "mailbox_msgs_replayed", "calendar_peak")
RUNTIME_WORKER_FIELDS = ("busy_ns", "idle_ns", "steal_ns", "items",
                         "steals")


def load_runtime(path):
    """Shard, worker and summary rows from the runtime channel.

    Returns (shards, workers, summaries): shards is {cell: [shard row
    dicts]}, workers {cell: [worker row dicts]}, summaries {cell:
    cell_summary dict}.
    """
    shards = {}
    workers = {}
    summaries = {}
    seen_schema = set()
    for number, row in parse_jsonl(path):
        kind = row.get("type")
        cell = row.get("cell", "")
        if kind == "schema":
            if row.get("channel") != "runtime":
                raise ReportError(
                    f"{path}:{number}: schema row with channel "
                    f"{row.get('channel')!r}, expected 'runtime'")
            seen_schema.add(cell)
            continue
        if kind in ("shard", "workers", "cell_summary") \
                and cell not in seen_schema:
            raise ReportError(
                f"{path}:{number}: {kind} row for cell {cell!r} before "
                f"its schema row")
        if kind == "shard":
            for field in RUNTIME_SHARD_FIELDS:
                if not isinstance(row.get(field), int):
                    raise ReportError(
                        f"{path}:{number}: shard row missing integer "
                        f"{field!r}")
            shards.setdefault(cell, []).append(row)
        elif kind == "workers":
            for field in RUNTIME_WORKER_FIELDS:
                if not isinstance(row.get(field), int):
                    raise ReportError(
                        f"{path}:{number}: workers row missing integer "
                        f"{field!r}")
            workers.setdefault(cell, []).append(row)
        elif kind == "cell_summary":
            summaries[cell] = row
        # Unknown row types tolerated.
    return shards, workers, summaries


# ----------------------------------------------------------- SVG helpers

PALETTE = ("#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed",
           "#0891b2", "#be185d", "#65a30d", "#475569", "#ea580c",
           "#0d9488", "#9333ea")


def svg_line_chart(series, width=640, height=240, title=""):
    """Multi-series line chart. series = [(label, [(x, y)])]."""
    pad_l, pad_r, pad_t, pad_b = 48, 8, 24, 28
    points = [p for _, pts in series for p in pts]
    if not points:
        return "<p class='empty'>no samples</p>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(min(ys), 0), max(max(ys), 1)
    x_span = (x_max - x_min) or 1
    y_span = (y_max - y_min) or 1
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b

    def sx(x):
        return pad_l + (x - x_min) / x_span * plot_w

    def sy(y):
        return pad_t + plot_h - (y - y_min) / y_span * plot_h

    parts = [f"<svg viewBox='0 0 {width} {height}' class='chart' "
             f"role='img'>"]
    parts.append(f"<text x='{pad_l}' y='14' class='charttitle'>"
                 f"{html.escape(title)}</text>")
    for frac in (0.0, 0.5, 1.0):
        y_val = y_min + frac * y_span
        y_px = sy(y_val)
        parts.append(f"<line x1='{pad_l}' y1='{y_px:.1f}' "
                     f"x2='{width - pad_r}' y2='{y_px:.1f}' "
                     f"class='grid'/>")
        parts.append(f"<text x='{pad_l - 4}' y='{y_px + 4:.1f}' "
                     f"class='tick' text-anchor='end'>{y_val:g}</text>")
    for frac in (0.0, 0.5, 1.0):
        x_val = x_min + frac * x_span
        parts.append(f"<text x='{sx(x_val):.1f}' y='{height - 8}' "
                     f"class='tick' text-anchor='middle'>"
                     f"{x_val:g}</text>")
    for index, (label, pts) in enumerate(series):
        if not pts:
            continue
        color = PALETTE[index % len(PALETTE)]
        path = " ".join(f"{'M' if i == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
                        for i, (x, y) in enumerate(pts))
        parts.append(f"<path d='{path}' fill='none' stroke='{color}' "
                     f"stroke-width='1.5'><title>"
                     f"{html.escape(label)}</title></path>")
    parts.append("</svg>")
    return "".join(parts)


def heat_color(fraction):
    """White -> red ramp for stall heat cells."""
    fraction = max(0.0, min(1.0, fraction))
    g_b = int(255 - 195 * fraction)
    return f"rgb(255,{g_b},{g_b})"


def svg_legend(labels):
    items = []
    for index, label in enumerate(labels):
        color = PALETTE[index % len(PALETTE)]
        items.append(f"<span class='key'><span class='swatch' "
                     f"style='background:{color}'></span>"
                     f"{html.escape(label)}</span>")
    return f"<div class='legend'>{''.join(items)}</div>"


# -------------------------------------------------------------- sections

def fmt_ms(ns):
    return f"{ns / 1e6:.1f}"


def summary_section(results):
    by_thr = sorted(results, key=lambda r: r["throughput_per_node"])
    rows = [
        ("cells", str(len(results))),
        ("topologies", str(len({r["topology"] for r in results}))),
        ("best throughput/node",
         f"{by_thr[-1]['throughput_per_node']:.4f} "
         f"({html.escape(by_thr[-1]['cell_id'])})"),
        ("worst throughput/node",
         f"{by_thr[0]['throughput_per_node']:.4f} "
         f"({html.escape(by_thr[0]['cell_id'])})"),
        ("total backlog at end", str(sum(r["backlog"] for r in results))),
    ]
    cells = "".join(f"<tr><th>{k}</th><td>{v}</td></tr>" for k, v in rows)
    return f"<h2>Campaign summary</h2><table class='kv'>{cells}</table>"


def trajectory_section(timeseries, max_cells=12):
    if not timeseries:
        return ("<h2>Trajectories</h2><p class='empty'>no timeseries "
                "channel in this campaign</p>")
    labels = sorted(timeseries)[:max_cells]
    dropped = len(timeseries) - len(labels)
    thr = [(cell, [(s, d) for s, d, _ in timeseries[cell]["samples"]])
           for cell in labels]
    backlog = [(cell, [(s, b) for s, _, b in timeseries[cell]["samples"]])
               for cell in labels]
    note = (f"<p class='empty'>showing first {len(labels)} of "
            f"{len(timeseries)} cells</p>" if dropped > 0 else "")
    return ("<h2>Trajectories (deterministic channel)</h2>" + note +
            svg_line_chart(thr, title="delivered per sample vs slot") +
            svg_line_chart(backlog, title="backlog vs slot") +
            svg_legend(labels))


def stall_section(shards, summaries):
    if not shards:
        return ("<h2>Shard stall heat</h2><p class='empty'>no sharded-"
                "engine cells in the runtime channel</p>")
    max_shards = max(len(rows) for rows in shards.values())
    head = "".join(f"<th>s{i}</th>" for i in range(max_shards))
    body = []
    for cell in sorted(shards):
        rows = sorted(shards[cell], key=lambda r: r["shard"])
        total = sum(r["barrier_wait_ns"] + r["work_ns"] for r in rows) or 1
        cols = []
        for row in rows:
            share = row["barrier_wait_ns"] / total
            cols.append(
                f"<td style='background:{heat_color(share * len(rows))}'"
                f" title='barrier {fmt_ms(row['barrier_wait_ns'])} ms, "
                f"work {fmt_ms(row['work_ns'])} ms'>"
                f"{100 * share:.0f}%</td>")
        cols += ["<td class='empty'></td>"] * (max_shards - len(rows))
        summary = summaries.get(cell, {})
        blame = ""
        if summary.get("blamed_shard", -1) >= 0:
            blame = (f"shard {summary['blamed_shard']} caused "
                     f"{100 * summary.get('blamed_share', 0):.0f}% of "
                     f"barrier wait")
        body.append(f"<tr><th>{html.escape(cell)}</th>{''.join(cols)}"
                    f"<td>{blame}</td></tr>")
    return ("<h2>Shard stall heat (runtime channel)</h2>"
            "<p>Each cell: a shard's barrier wait as a share of the "
            "cell's total shard time (100% / shard count would be a "
            "fully stalled shard).</p>"
            f"<table class='heat'><tr><th>cell</th>{head}"
            f"<th>attribution</th></tr>{''.join(body)}</table>")


def worker_section(workers):
    rows = workers.get("campaign") or next(
        (workers[c] for c in sorted(workers)), None)
    if not rows:
        return ("<h2>Worker utilization</h2><p class='empty'>no pool "
                "worker rows in the runtime channel</p>")
    rows = sorted(rows, key=lambda r: r["worker"])
    body = []
    for row in rows:
        total = (row["busy_ns"] + row["idle_ns"] + row["steal_ns"]) or 1
        busy = 100 * row["busy_ns"] / total
        steal = 100 * row["steal_ns"] / total
        idle = 100 * row["idle_ns"] / total
        bar = (f"<div class='bar'>"
               f"<span class='busy' style='width:{busy:.1f}%'></span>"
               f"<span class='steal' style='width:{steal:.1f}%'></span>"
               f"<span class='idle' style='width:{idle:.1f}%'></span>"
               f"</div>")
        body.append(
            f"<tr><th>w{row['worker']}</th><td>{bar}</td>"
            f"<td>{busy:.0f}% busy</td><td>{row['items']} items</td>"
            f"<td>{row['steals']} stolen</td></tr>")
    return ("<h2>Worker utilization (runtime channel)</h2>"
            "<p><span class='swatch busyfill'></span>busy "
            "<span class='swatch stealfill'></span>steal scan "
            "<span class='swatch idlefill'></span>idle</p>"
            f"<table class='workers'>{''.join(body)}</table>")


STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 60em; color: #1e293b; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #cbd5e1; padding: 2px 8px; text-align: left; }
table.kv th { background: #f1f5f9; }
table.heat td { text-align: right; min-width: 3em; }
.chart { background: #fff; border: 1px solid #cbd5e1; margin: 4px 0;
         max-width: 100%; }
.grid { stroke: #e2e8f0; } .tick { font-size: 10px; fill: #64748b; }
.charttitle { font-size: 12px; fill: #334155; }
.legend .key { margin-right: 1em; white-space: nowrap; }
.swatch { display: inline-block; width: 10px; height: 10px;
          margin-right: 4px; }
.bar { display: flex; width: 16em; height: 12px; background: #f1f5f9; }
.bar span { display: block; height: 100%; }
.busy, .busyfill { background: #059669; }
.steal, .stealfill { background: #d97706; }
.idle, .idlefill { background: #e2e8f0; }
.empty { color: #94a3b8; }
"""


def render(results, timeseries, shards, workers, summaries, title):
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title>"
        f"<style>{STYLE}</style></head><body>"
        f"<h1>{html.escape(title)}</h1>"
        + summary_section(results)
        + trajectory_section(timeseries)
        + stall_section(shards, summaries)
        + worker_section(workers)
        + "</body></html>\n")


def main():
    parser = argparse.ArgumentParser(
        description="render a campaign directory as a self-contained "
                    "HTML report")
    parser.add_argument("out_dir", nargs="?",
                        help="campaign output directory (results.csv, "
                             "timeseries.jsonl, runtime.jsonl)")
    parser.add_argument("--csv", help="results.csv path")
    parser.add_argument("--timeseries", help="timeseries JSONL path")
    parser.add_argument("--runtime", help="runtime JSONL path")
    parser.add_argument("--output", default="report.html")
    args = parser.parse_args()

    def resolve(explicit, name):
        if explicit:
            return explicit
        if args.out_dir:
            candidate = os.path.join(args.out_dir, name)
            return candidate if os.path.exists(candidate) else None
        return None

    csv_path = args.csv or (args.out_dir and
                            os.path.join(args.out_dir, "results.csv"))
    if not csv_path:
        parser.error("need OUT_DIR or --csv")
    ts_path = resolve(args.timeseries, "timeseries.jsonl")
    rt_path = resolve(args.runtime, "runtime.jsonl")

    try:
        results = load_results_csv(csv_path)
        timeseries = load_timeseries(ts_path) if ts_path else {}
        shards, workers, summaries = (
            load_runtime(rt_path) if rt_path else ({}, {}, {}))
    except ReportError as exc:
        print(f"report.py: {exc}", file=sys.stderr)
        return 1

    title = f"Campaign report: {os.path.basename(os.path.abspath(args.out_dir or csv_path))}"
    document = render(results, timeseries, shards, workers, summaries,
                      title)
    with open(args.output, "w", encoding="utf-8") as fh:
        fh.write(document)
    sections = sum((1, bool(timeseries), bool(shards), bool(workers)))
    print(f"report.py: {args.output} written ({len(results)} cells, "
          f"{sections}/4 sections)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
