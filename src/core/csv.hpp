#pragma once
/// \file csv.hpp
/// Minimal CSV emission for experiment outputs.
///
/// Bench binaries can dump the series they print as CSV so the figures can
/// be re-plotted outside the harness.

#include <fstream>
#include <string>
#include <vector>

namespace otis::core {

/// Appends rows to a CSV file; writes the header once on creation.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Writes one data row. Cells containing commas/quotes are quoted.
  void write_row(const std::vector<std::string>& cells);

  /// True if the underlying stream is healthy.
  [[nodiscard]] bool good() const { return out_.good(); }

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace otis::core
