#pragma once
/// \file workload.hpp
/// Closed-loop workloads for the OPS network simulator.
///
/// The TrafficGenerators (sim/traffic.hpp) are open loop: every slot
/// each node may offer a fresh packet, independent of what the network
/// delivered. Real parallel programs are not like that -- a collective
/// step cannot start before the data it combines has arrived. This
/// layer models that feedback: a Workload is a set of packets, each
/// eligible for injection only once its predecessors have been
/// *delivered*, and the engines run it to completion (no fixed
/// measure-slots window) reporting the makespan.
///
/// Contract the engines rely on for cross-engine bit-parity:
///  - packet ids are dense 0..packet_count()-1 and unique;
///  - poll(slot) appends the packets that become eligible at `slot`,
///    sorted by id, and is a pure function of (slot, the SET of ids
///    reported delivered so far) -- never of delivery order. The
///    engines feed all of a slot's deliveries before the next poll but
///    in engine-specific order, so order-sensitivity would break the
///    bit-identical-across-engines guarantee;
///  - delivered(id) is called at most once per id;
///  - done() is true once every packet has been delivered;
///  - reset() restores the initial state so one object can drive
///    several runs.
///
/// Implementations here:
///  - DagWorkload: explicit dependency lists (a packet is eligible when
///    all its predecessor packets are delivered), cycle-checked;
///  - WaveWorkload: bulk-synchronous wave barriers (wave w is eligible
///    when every packet of waves < w is delivered) -- the shape of
///    compiled collective schedules and BSP phase exchanges, without
///    materializing the quadratic wave-to-wave edge set.
///
/// Builders for concrete workloads live next door: schedule_workload
/// (collectives::SlotSchedule -> WaveWorkload), kernels (BSP exchange,
/// reduce/gather trees), trace (TraceWorkload replay).

#include <cstdint>
#include <memory>
#include <vector>

#include "hypergraph/hypergraph.hpp"

namespace otis::workload {

/// One unit of closed-loop traffic: a unicast packet plus its identity
/// in the workload's dependency structure.
struct WorkloadPacket {
  std::int64_t id = 0;  ///< dense 0..packet_count()-1
  hypergraph::Node source = 0;
  hypergraph::Node destination = 0;

  friend bool operator==(const WorkloadPacket&,
                         const WorkloadPacket&) = default;
};

/// Closed-loop packet source driven by the engines (see file comment
/// for the determinism contract).
class Workload {
 public:
  virtual ~Workload() = default;

  /// Total packets this workload will inject.
  [[nodiscard]] virtual std::int64_t packet_count() const = 0;
  /// Node count the sources/destinations were built against (validated
  /// against the simulated network).
  [[nodiscard]] virtual std::int64_t node_count() const = 0;

  /// Restores the initial (nothing injected, nothing delivered) state.
  virtual void reset() = 0;

  /// Appends every packet that becomes eligible at `slot`, sorted by
  /// id. Called once per slot with strictly increasing slot values;
  /// each packet is emitted exactly once per run.
  virtual void poll(std::int64_t slot, std::vector<WorkloadPacket>& out) = 0;

  /// Reports that packet `id` reached its destination.
  virtual void delivered(std::int64_t id) = 0;

  /// True once every packet has been delivered.
  [[nodiscard]] virtual bool done() const = 0;
};

/// Generic dependency-DAG workload: packet i is eligible once every
/// packet in deps[i] has been delivered (deps may be empty -- such
/// packets are eligible at slot 0). The constructor rejects cyclic or
/// out-of-range dependency structures.
class DagWorkload : public Workload {
 public:
  /// `packets[i].id` is forced to i (ids are positional). `deps[i]`
  /// lists the packet indices packet i waits for.
  DagWorkload(std::int64_t node_count, std::vector<WorkloadPacket> packets,
              std::vector<std::vector<std::int64_t>> deps);

  [[nodiscard]] std::int64_t packet_count() const override {
    return static_cast<std::int64_t>(packets_.size());
  }
  [[nodiscard]] std::int64_t node_count() const override {
    return node_count_;
  }
  void reset() override;
  void poll(std::int64_t slot, std::vector<WorkloadPacket>& out) override;
  void delivered(std::int64_t id) override;
  [[nodiscard]] bool done() const override {
    return delivered_count_ == packet_count();
  }

 private:
  std::int64_t node_count_ = 0;
  std::vector<WorkloadPacket> packets_;
  std::vector<std::vector<std::int64_t>> deps_;
  std::vector<std::vector<std::int64_t>> dependents_;

  std::vector<std::int64_t> missing_;  ///< undelivered deps per packet
  std::vector<std::int64_t> ready_;    ///< eligible, not yet emitted
  std::int64_t delivered_count_ = 0;
};

/// Bulk-synchronous wave workload: all packets of wave 0 are eligible
/// at slot 0; wave w becomes eligible once every packet of wave w-1 is
/// delivered (waves < w-1 are delivered by induction). Empty waves are
/// rejected -- they would stall the barrier chain forever.
class WaveWorkload : public Workload {
 public:
  /// `waves[w]` lists wave w's packets; ids are assigned 0..n-1 in
  /// (wave, position) order.
  WaveWorkload(std::int64_t node_count,
               std::vector<std::vector<WorkloadPacket>> waves);

  [[nodiscard]] std::int64_t packet_count() const override {
    return total_;
  }
  [[nodiscard]] std::int64_t node_count() const override {
    return node_count_;
  }
  [[nodiscard]] std::int64_t wave_count() const noexcept {
    return static_cast<std::int64_t>(waves_.size());
  }
  void reset() override;
  void poll(std::int64_t slot, std::vector<WorkloadPacket>& out) override;
  void delivered(std::int64_t id) override;
  [[nodiscard]] bool done() const override {
    return delivered_count_ == total_;
  }

 private:
  std::int64_t node_count_ = 0;
  std::vector<std::vector<WorkloadPacket>> waves_;
  std::int64_t total_ = 0;

  std::size_t next_wave_ = 0;          ///< first wave not yet emitted
  std::int64_t wave_remaining_ = 0;    ///< undelivered packets of the
                                       ///< last emitted wave
  std::int64_t delivered_count_ = 0;
};

}  // namespace otis::workload
