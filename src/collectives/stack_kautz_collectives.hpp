#pragma once
/// \file stack_kautz_collectives.hpp
/// Collective communication schedules on SK(s, d, k).
///
///  - one-to-all: k rounds of group-level flooding. In round 1 the root
///    fires all its d+1 couplers (loop informs its own group, arcs
///    inform the d successor groups -- every member of a heard group is
///    informed at once, the stack-graph's one-to-many power). In later
///    rounds every informed group designates one member to fire the d
///    arc couplers. Completes in exactly k slots = the network diameter,
///    which is optimal.
///  - gossip: s intra-group slots (loop round-robin: member y broadcasts
///    its knowledge on the loop in slot y) followed by k flooding rounds
///    where every group re-broadcasts its accumulated knowledge on all d
///    arc couplers. Completes in s + k slots under the combining model.

#include "collectives/schedule.hpp"
#include "hypergraph/stack_kautz.hpp"

namespace otis::collectives {

/// k-slot broadcast from `root`; optimal (network diameter).
[[nodiscard]] SlotSchedule stack_kautz_one_to_all(
    const hypergraph::StackKautz& network, hypergraph::Node root);

/// (s + k)-slot gossip under the combining model.
[[nodiscard]] SlotSchedule stack_kautz_gossip(
    const hypergraph::StackKautz& network);

/// Diameter lower bound for one-to-all.
[[nodiscard]] std::int64_t stack_kautz_broadcast_lower_bound(
    const hypergraph::StackKautz& network);

}  // namespace otis::collectives
