#pragma once
/// \file digraph.hpp
/// Compact directed multigraph in CSR (compressed sparse row) form.
///
/// All topologies in this library (complete digraph, Kautz, Imase-Itoh,
/// de Bruijn) are directed and may carry loops; Imase-Itoh graphs with
/// n < d(d+1) may even carry parallel arcs, so the representation is a
/// multigraph: arcs are stored exactly as given, in tail-major order.

#include <cstdint>
#include <utility>
#include <vector>

namespace otis::graph {

/// Vertex id; vertices are always 0..order()-1.
using Vertex = std::int64_t;

/// Arc id in CSR order (tail-major, stable within a tail).
using ArcId = std::int64_t;

/// A (tail, head) pair used when building graphs.
struct Arc {
  Vertex tail = 0;
  Vertex head = 0;
  friend bool operator==(const Arc&, const Arc&) = default;
  friend auto operator<=>(const Arc&, const Arc&) = default;
};

/// Immutable CSR digraph. Construction validates vertex ranges. Arc ids
/// are assigned in tail-major order (all arcs out of vertex 0 first, in
/// the order supplied, then vertex 1, ...), which the line-digraph
/// operator and the OTIS port assignment both rely on.
class Digraph {
 public:
  /// Empty graph with `order` vertices and no arcs.
  explicit Digraph(Vertex order = 0);

  /// Builds from an arbitrary arc list (need not be sorted).
  static Digraph from_arcs(Vertex order, const std::vector<Arc>& arcs);

  /// Number of vertices.
  [[nodiscard]] Vertex order() const noexcept {
    return static_cast<Vertex>(offsets_.size()) - 1;
  }

  /// Number of arcs (loops and parallels counted individually).
  [[nodiscard]] std::int64_t size() const noexcept {
    return static_cast<std::int64_t>(heads_.size());
  }

  /// Out-neighbours of `v` (heads of arcs with tail v), CSR order.
  [[nodiscard]] std::vector<Vertex> out_neighbors(Vertex v) const;

  /// First arc id out of `v`; arcs out of v are [out_begin(v), out_end(v)).
  [[nodiscard]] ArcId out_begin(Vertex v) const;
  [[nodiscard]] ArcId out_end(Vertex v) const;

  /// Out-degree of `v`.
  [[nodiscard]] std::int64_t out_degree(Vertex v) const;

  /// In-degree of `v` (computed once, cached at construction).
  [[nodiscard]] std::int64_t in_degree(Vertex v) const;

  /// Head of arc `a`.
  [[nodiscard]] Vertex head(ArcId a) const;

  /// Tail of arc `a` (binary search over the offset array).
  [[nodiscard]] Vertex tail(ArcId a) const;

  /// Arc (tail, head) of arc id `a`.
  [[nodiscard]] Arc arc(ArcId a) const { return Arc{tail(a), head(a)}; }

  /// All arcs in CSR order.
  [[nodiscard]] std::vector<Arc> arcs() const;

  /// True if there is at least one arc u -> v.
  [[nodiscard]] bool has_arc(Vertex u, Vertex v) const;

  /// Number of parallel arcs u -> v.
  [[nodiscard]] std::int64_t arc_multiplicity(Vertex u, Vertex v) const;

  /// Number of loops (arcs v -> v).
  [[nodiscard]] std::int64_t loop_count() const;

  /// True if every vertex has out-degree == in-degree == d.
  [[nodiscard]] bool is_regular(std::int64_t d) const;

  /// Structural equality: same order and identical arc multisets.
  [[nodiscard]] bool same_arcs(const Digraph& other) const;

 private:
  void check_vertex(Vertex v) const;

  std::vector<ArcId> offsets_;        // size order()+1
  std::vector<Vertex> heads_;         // size size()
  std::vector<std::int64_t> indeg_;   // size order()
};

/// Convenience: sorted copy of a graph's arcs, for multiset comparisons.
[[nodiscard]] std::vector<Arc> sorted_arcs(const Digraph& g);

}  // namespace otis::graph
