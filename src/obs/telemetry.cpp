#include "obs/telemetry.hpp"

#include <utility>

#include "core/error.hpp"

namespace otis::obs {

namespace {

/// Occupancy histogram bounds: couplers bucketed by queued packets.
const std::vector<std::int64_t> kOccupancyBounds = {0, 1, 2, 4, 8, 16, 32, 64};

}  // namespace

void TelemetryConfig::validate() const {
  OTIS_REQUIRE(sample_period >= 0,
               "TelemetryConfig: sample_period must be >= 0");
  OTIS_REQUIRE(sample_period > 0 || timeseries_path.empty(),
               "TelemetryConfig: timeseries_path needs sample_period > 0");
  for (const std::string& name : probes) {
    bool known = false;
    for (const std::string& candidate : engine_probe_names()) {
      if (candidate == name) {
        known = true;
        break;
      }
    }
    OTIS_REQUIRE(known,
                 "TelemetryConfig: unknown probe \"" + name + "\" in the "
                 "allowlist (see engine_probe_names())");
  }
}

const std::vector<std::string>& engine_probe_names() {
  static const std::vector<std::string> kNames = {
      "offered",  "delivered",      "transmissions", "collisions",
      "dropped",  "backlog",        "pending_events", "occupancy"};
  return kNames;
}

// ------------------------------------------------------ TimeSeriesWriter

TimeSeriesWriter::TimeSeriesWriter(std::string path)
    : path_(std::move(path)) {
  if (!path_.empty()) {
    out_.open(path_, std::ios::trunc);
    OTIS_REQUIRE(out_.good(), "TimeSeriesWriter: cannot open \"" + path_ +
                                  "\" for writing");
  }
}

void TimeSeriesWriter::append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++rows_;
  if (out_.is_open()) {
    out_ << line << "\n";
  }
}

void TimeSeriesWriter::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) {
    out_.flush();
  }
}

void TimeSeriesWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) {
    out_.close();
    OTIS_REQUIRE(out_.good(),
                 "TimeSeriesWriter: write to \"" + path_ + "\" failed");
  }
}

std::int64_t TimeSeriesWriter::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_;
}

// ------------------------------------------------------------- Telemetry

std::shared_ptr<Telemetry> Telemetry::create(const TelemetryConfig& config) {
  config.validate();
  std::shared_ptr<TimeSeriesWriter> writer;
  if (config.sample_period > 0) {
    writer = std::make_shared<TimeSeriesWriter>(config.timeseries_path);
  }
  std::shared_ptr<ChromeTraceSink> sink;
  if (!config.trace_path.empty()) {
    sink = std::make_shared<ChromeTraceSink>(config.trace_path);
  }
  return std::shared_ptr<Telemetry>(new Telemetry(
      config, std::move(writer), std::move(sink), "", 0, /*owns_sinks=*/true));
}

std::shared_ptr<Telemetry> Telemetry::attach(
    const TelemetryConfig& config, std::shared_ptr<TimeSeriesWriter> writer,
    std::shared_ptr<ChromeTraceSink> sink, std::string label,
    std::int32_t tid) {
  config.validate();
  if (config.sample_period <= 0) {
    writer = nullptr;
  }
  return std::shared_ptr<Telemetry>(
      new Telemetry(config, std::move(writer), std::move(sink),
                    std::move(label), tid, /*owns_sinks=*/false));
}

Telemetry::Telemetry(const TelemetryConfig& config,
                     std::shared_ptr<TimeSeriesWriter> writer,
                     std::shared_ptr<ChromeTraceSink> sink, std::string label,
                     std::int32_t tid, bool owns_sinks)
    : period_(config.sample_period),
      label_(std::move(label)),
      tid_(tid),
      owns_sinks_(owns_sinks),
      writer_(std::move(writer)),
      sink_(std::move(sink)) {
  engine_.offered = probes_.counter("offered");
  engine_.delivered = probes_.counter("delivered");
  engine_.transmissions = probes_.counter("transmissions");
  engine_.collisions = probes_.counter("collisions");
  engine_.dropped = probes_.counter("dropped");
  engine_.backlog = probes_.gauge("backlog");
  engine_.pending_events = probes_.gauge("pending_events");
  engine_.occupancy = probes_.histogram("occupancy", kOccupancyBounds);
  emit_.assign(probes_.probe_count(), config.probes.empty());
  for (const std::string& name : config.probes) {
    for (ProbeId id = 0; id < probes_.probe_count(); ++id) {
      if (probes_.name(id) == name) {
        emit_[id] = true;
      }
    }
  }
  prev_.assign(probes_.probe_count(), 0);
}

void Telemetry::sample(std::int64_t slot) {
  if (writer_ == nullptr) {
    return;
  }
  if (!header_written_) {
    header_written_ = true;
    std::string header = "{\"type\":\"schema\"";
    if (!label_.empty()) {
      header += ",\"cell\":\"" + detail::json_escaped(label_) + "\"";
    }
    header += ",\"sample_period\":" + std::to_string(period_);
    header += ",\"probes\":[";
    bool first = true;
    for (ProbeId id = 0; id < probes_.probe_count(); ++id) {
      if (!emit_[id]) {
        continue;
      }
      if (!first) {
        header += ",";
      }
      first = false;
      header += "\"" + probes_.name(id) + "\"";
    }
    header += "],\"occupancy_bounds\":[";
    const std::vector<std::int64_t>& bounds =
        probes_.bounds(engine_.occupancy);
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) {
        header += ",";
      }
      header += std::to_string(bounds[i]);
    }
    header += "]}";
    writer_->append(header);
  }
  std::string row = "{\"type\":\"sample\"";
  if (!label_.empty()) {
    row += ",\"cell\":\"" + detail::json_escaped(label_) + "\"";
  }
  row += ",\"slot\":" + std::to_string(slot);
  for (ProbeId id = 0; id < probes_.probe_count(); ++id) {
    if (!emit_[id]) {
      continue;
    }
    row += ",\"" + probes_.name(id) + "\":";
    switch (probes_.kind(id)) {
      case ProbeKind::kCounter: {
        const std::int64_t value = probes_.value(id);
        row += std::to_string(value - prev_[id]);
        prev_[id] = value;
        break;
      }
      case ProbeKind::kGauge:
        row += std::to_string(probes_.value(id));
        break;
      case ProbeKind::kHistogram: {
        row += "[";
        for (std::size_t b = 0; b < probes_.bucket_count(id); ++b) {
          if (b > 0) {
            row += ",";
          }
          row += std::to_string(probes_.bucket(id, b));
        }
        row += "]";
        break;
      }
    }
  }
  row += "}";
  writer_->append(row);
}

void Telemetry::finish(std::int64_t last_slot) {
  if (sampling() && last_slot >= 0 && !due(last_slot)) {
    sample(last_slot);
  }
  if (writer_ != nullptr) {
    writer_->flush();
  }
}

std::int64_t Telemetry::rows_sampled() const {
  return writer_ == nullptr ? 0 : writer_->rows();
}

void Telemetry::close() {
  if (!owns_sinks_) {
    if (writer_ != nullptr) {
      writer_->flush();
    }
    return;
  }
  if (writer_ != nullptr) {
    writer_->close();
  }
  if (sink_ != nullptr) {
    sink_->close();
  }
}

// ----------------------------------------------------------- WindowSpans

WindowSpans::WindowSpans(ChromeTraceSink* sink, std::int32_t tid,
                         std::int64_t warmup, std::int64_t horizon)
    : sink_(sink), tid_(tid), warmup_(warmup), horizon_(horizon) {}

void WindowSpans::at_slot(std::int64_t now) {
  if (sink_ == nullptr) {
    return;
  }
  if (start_us_ < 0) {
    start_us_ = sink_->now_us();
  }
  if (now == warmup_ && measure_us_ < 0) {
    measure_us_ = sink_->now_us();
  }
  if (now == horizon_ && drain_us_ < 0) {
    drain_us_ = sink_->now_us();
  }
}

void WindowSpans::finish() {
  if (sink_ == nullptr || start_us_ < 0) {
    return;
  }
  const std::int64_t end_us = sink_->now_us();
  auto emit = [&](const char* name, std::int64_t from, std::int64_t to) {
    TraceEvent event;
    event.name = name;
    event.category = "engine";
    event.ts_us = from;
    event.dur_us = to - from;
    event.tid = tid_;
    sink_->emit(std::move(event));
  };
  const std::int64_t measure_from = measure_us_ >= 0 ? measure_us_ : end_us;
  if (warmup_ > 0) {
    emit("warmup", start_us_, measure_from);
  }
  emit("measure", measure_from, drain_us_ >= 0 ? drain_us_ : end_us);
  if (drain_us_ >= 0) {
    emit("drain", drain_us_, end_us);
  }
  sink_ = nullptr;
}

}  // namespace otis::obs
