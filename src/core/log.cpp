#include "core/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace otis::core {

namespace {

std::atomic<int> g_level{-1};  // -1 means "not initialized yet"
std::mutex g_io_mutex;

int level_from_env() {
  const char* env = std::getenv("OTISNET_LOG");
  if (env == nullptr) {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (std::strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  if (std::strcmp(env, "warn") == 0) return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  return static_cast<int>(LogLevel::kWarn);
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  int level = g_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = level_from_env();
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void log_message(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::fprintf(stderr, "[otisnet %s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace otis::core
