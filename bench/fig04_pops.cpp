// Fig. 4 of the paper: the Partitioned Optical Passive Star network
// POPS(4,2) with 8 nodes. Regenerates the coupler wiring table (which
// groups feed/hear each of the g^2 couplers) and machine-checks the
// single-hop property.

#include <iostream>

#include "core/table.hpp"
#include "hypergraph/pops.hpp"

int main() {
  std::cout << "[Fig. 4] POPS(4,2): 8 processors, 2 groups of 4, 4 OPS "
               "couplers of degree 4\n\n";
  otis::hypergraph::Pops pops(4, 2);
  const auto& hg = pops.stack().hypergraph();

  otis::core::Table table({"coupler (i,j)", "fed by processors",
                           "heard by processors"});
  auto fmt = [](const std::vector<otis::hypergraph::Node>& v) {
    std::string text;
    for (auto x : v) {
      text += (text.empty() ? "" : ",") + std::to_string(x);
    }
    return text;
  };
  bool ok = true;
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) {
      const auto& arc = hg.hyperarc(pops.coupler(i, j));
      table.add("(" + std::to_string(i) + "," + std::to_string(j) + ")",
                fmt(arc.sources), fmt(arc.targets));
      for (auto s : arc.sources) {
        ok = ok && pops.group_of(s) == i;
      }
      for (auto t : arc.targets) {
        ok = ok && pops.group_of(t) == j;
      }
      ok = ok && arc.sources.size() == 4 && arc.targets.size() == 4;
    }
  }
  table.print(std::cout);

  const std::int64_t diameter = hg.diameter();
  std::cout << "\nprocessors: " << pops.processor_count()
            << ", couplers: " << pops.coupler_count()
            << ", hypergraph diameter: " << diameter
            << " (single-hop: " << (diameter == 1 ? "yes" : "NO") << ")\n";
  ok = ok && diameter == 1 && pops.processor_count() == 8 &&
       pops.coupler_count() == 4;
  std::cout << "figure reproduced: " << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
