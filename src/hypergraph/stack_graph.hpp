#pragma once
/// \file stack_graph.hpp
/// Stack-graphs (paper Def. 1; Bourdin-Ferreira-Marcus 1998).
///
/// The stack-graph sigma(s, G) piles s copies of each vertex of a base
/// digraph G and turns every base arc (u, v) into one hyperarc whose
/// sources are the s copies of u and whose targets are the s copies of v.
/// One hyperarc == one OPS coupler of degree s, so sigma(s, G) is *the*
/// model of a multi-OPS network whose coupler wiring follows G.
///
/// Node numbering: copy y of base vertex x gets node id x*s + y, matching
/// the paper's processor labels (x, y) = (group, index-in-group) for the
/// stack-Kautz network (Fig. 7 numbers SK(6,3,2)'s processors 0..71 in
/// exactly this order).

#include <cstdint>

#include "graph/digraph.hpp"
#include "hypergraph/hypergraph.hpp"

namespace otis::hypergraph {

/// sigma(s, G) with the projection pi back onto G kept explicit.
class StackGraph {
 public:
  /// Builds sigma(stacking_factor, base). stacking_factor >= 1.
  StackGraph(std::int64_t stacking_factor, graph::Digraph base);

  /// The stacking factor s (OPS coupler degree).
  [[nodiscard]] std::int64_t stacking_factor() const noexcept { return s_; }

  /// The base digraph G.
  [[nodiscard]] const graph::Digraph& base() const noexcept { return base_; }

  /// The hypergraph sigma(s, G); hyperarc h corresponds to base arc h
  /// (CSR arc numbering of the base digraph).
  [[nodiscard]] const DirectedHypergraph& hypergraph() const noexcept {
    return hypergraph_;
  }

  /// Total processors: s * |V(G)|.
  [[nodiscard]] Node node_count() const noexcept {
    return hypergraph_.node_count();
  }

  /// Projection pi: stack node -> base vertex (the "group" label x).
  [[nodiscard]] graph::Vertex project(Node node) const;

  /// Copy index within the stack (the label y, 0 <= y < s).
  [[nodiscard]] std::int64_t copy_index(Node node) const;

  /// Node id of copy y of base vertex x.
  [[nodiscard]] Node node_of(graph::Vertex x, std::int64_t y) const;

  /// Position of coupler `h` in out_hyperarcs(node) -- the VOQ slot fed
  /// by `node` toward `h` -- or -1 when `node` cannot feed `h`. Pure
  /// arithmetic O(1): a stack node's out-couplers are exactly the CSR
  /// arc range of its base vertex, in arc-id order.
  [[nodiscard]] std::int64_t out_slot_of(Node node, HyperarcId h) const;

  /// Hyperarc (coupler) id of base arc `a`; identity by construction but
  /// kept as API so callers do not depend on that.
  [[nodiscard]] HyperarcId coupler_of_arc(graph::ArcId a) const;

  /// Base arc of a coupler.
  [[nodiscard]] graph::ArcId arc_of_coupler(HyperarcId h) const;

 private:
  std::int64_t s_;
  graph::Digraph base_;
  DirectedHypergraph hypergraph_;
};

}  // namespace otis::hypergraph
