file(REMOVE_RECURSE
  "CMakeFiles/test_hypergraph.dir/tests/test_hypergraph.cpp.o"
  "CMakeFiles/test_hypergraph.dir/tests/test_hypergraph.cpp.o.d"
  "test_hypergraph"
  "test_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
