#include "core/error.hpp"
#include "designs/builders.hpp"
#include "designs/group_block.hpp"
#include "hypergraph/pops.hpp"

namespace otis::designs {

using optics::PortRef;

NetworkDesign pops_design(std::int64_t group_size, std::int64_t group_count) {
  OTIS_REQUIRE(group_size >= 1, "pops_design: group size must be >= 1");
  OTIS_REQUIRE(group_count >= 1, "pops_design: group count must be >= 1");
  const std::int64_t t = group_size;
  const std::int64_t g = group_count;

  NetworkDesign design;
  design.name = "POPS(" + std::to_string(t) + "," + std::to_string(g) + ")";
  design.processor_count = t * g;
  design.tx_of_processor.resize(static_cast<std::size_t>(t * g));
  design.rx_of_processor.resize(static_cast<std::size_t>(t * g));

  // Per group: one transmit block OTIS(t, g) + g multiplexers, one
  // receive block OTIS(g, t) + g beam-splitters (paper Sec. 3.1).
  std::vector<GroupTxBlock> txb;
  std::vector<GroupRxBlock> rxb;
  txb.reserve(static_cast<std::size_t>(g));
  rxb.reserve(static_cast<std::size_t>(g));
  for (std::int64_t i = 0; i < g; ++i) {
    const std::string prefix = "group" + std::to_string(i);
    txb.push_back(build_group_tx(design.netlist, t, g, prefix));
    rxb.push_back(build_group_rx(design.netlist, g, t, prefix));
    for (std::int64_t j = 0; j < t; ++j) {
      const std::size_t p = static_cast<std::size_t>(i * t + j);
      design.tx_of_processor[p] = txb.back().tx[static_cast<std::size_t>(j)];
      design.rx_of_processor[p] = rxb.back().rx[static_cast<std::size_t>(j)];
    }
  }

  // The optical interconnection network is one OTIS(g, g), which realizes
  // II(g, g) = K+_g (paper Sec. 4.1): multiplexer slot c of group i is
  // node i's transmitter alpha = c+1, entering input g*i + c; node v's
  // receivers are output group v, feeding its beam-splitter bank.
  optics::ComponentId middle =
      design.netlist.add_otis(g, g, design.name + "/otis-interconnect");
  for (std::int64_t i = 0; i < g; ++i) {
    for (std::int64_t c = 0; c < g; ++c) {
      design.netlist.connect(
          PortRef{txb[static_cast<std::size_t>(i)]
                      .mux[static_cast<std::size_t>(c)],
                  0},
          PortRef{middle, g * i + c});
    }
  }
  for (std::int64_t v = 0; v < g; ++v) {
    for (std::int64_t b = 0; b < g; ++b) {
      design.netlist.connect(
          PortRef{middle, v * g + b},
          PortRef{rxb[static_cast<std::size_t>(v)]
                      .splitter[static_cast<std::size_t>(b)],
                  0});
    }
  }

  design.target_hypergraph =
      hypergraph::Pops(t, g).stack().hypergraph();
  design.finalize();
  return design;
}

}  // namespace otis::designs
