// Perf F7 (future-work extension): multi-wavelength OPS couplers. The
// paper fixes "single-wavelength OPS couplers ... only one processor can
// send an optical signal through it per time step" (Sec. 2.2) and points
// at WDM as the enabling technology ([8, 20, 21]). This bench asks what
// W wavelengths per coupler buy the stack-Kautz network: saturation
// throughput should scale with min(W, contention) and then flatten once
// the couplers stop being the bottleneck (receiver/relay limits take
// over).

#include <iostream>
#include <memory>

#include "core/table.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/ops_network.hpp"

namespace {

otis::sim::RunMetrics run_with_wavelengths(std::int64_t wavelengths,
                                           std::uint64_t seed) {
  otis::hypergraph::StackKautz sk(6, 3, 2);
  otis::sim::SimConfig config;
  config.warmup_slots = 200;
  config.measure_slots = 1000;
  config.seed = seed;
  config.wavelengths = wavelengths;
  otis::sim::OpsNetworkSim sim(
      sk.stack(), otis::routing::compile_stack_kautz_routes(sk),
      std::make_unique<otis::sim::SaturationTraffic>(sk.processor_count()),
      config);
  return sim.run();
}

}  // namespace

int main() {
  std::cout << "[Perf F7] WDM extension: wavelengths per coupler on "
               "saturated SK(6,3,2)\n\n";
  otis::core::Table table({"W", "sat thr/node", "aggregate pkt/slot",
                           "coupler tx/slot", "speedup vs W=1"});
  double base = 0.0;
  std::vector<double> throughputs;
  for (std::int64_t w : {1, 2, 3, 4, 6}) {
    otis::sim::RunMetrics m = run_with_wavelengths(w, 31);
    const double thr = m.throughput_per_node(72);
    if (w == 1) {
      base = thr;
    }
    throughputs.push_back(thr);
    table.add(w, thr, thr * 72.0,
              static_cast<double>(m.coupler_transmissions) / 1000.0,
              base > 0 ? thr / base : 0.0);
  }
  table.print(std::cout);

  // Shapes: monotone non-decreasing in W; W=2 gives a material gain over
  // W=1; the curve flattens (diminishing returns) by W=6 because with
  // s = 6 senders per coupler at most 6 can ever transmit.
  bool ok = true;
  for (std::size_t i = 1; i < throughputs.size(); ++i) {
    ok = ok && throughputs[i] >= throughputs[i - 1] - 0.01;
  }
  ok = ok && throughputs[1] > throughputs[0] * 1.2;
  const double tail_gain =
      throughputs.back() - throughputs[throughputs.size() - 2];
  const double head_gain = throughputs[1] - throughputs[0];
  ok = ok && tail_gain < head_gain;
  std::cout << "\nthroughput monotone in W, >20% gain at W=2, diminishing "
               "returns at the tail: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
