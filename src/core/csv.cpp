#include "core/csv.hpp"

#include "core/error.hpp"

namespace otis::core {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), columns_(header.size()) {
  OTIS_REQUIRE(out_.good(), "CsvWriter: cannot open " + path);
  write_row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quotes = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      quoted += '"';
    }
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  OTIS_REQUIRE(cells.size() == columns_, "CsvWriter: wrong column count");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out_ << ',';
    }
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

}  // namespace otis::core
