#pragma once
/// \file pops_collectives.hpp
/// Collective communication schedules on POPS(t, g).
///
/// POPS is single-hop, so collectives reduce to coloring coupler usage:
///  - one-to-all: the root fires its g couplers (i, 0..g-1) in ONE slot
///    (one statically-tuned transmitter per coupler) -- every processor
///    hears it; latency 1 slot, the multi-OPS headline.
///  - gossip (all-to-all, non-personalized): t slots; in slot y the
///    processor with in-group index y of EVERY group broadcasts on all
///    its g couplers. Coupler (i, j) is driven only by (i, y): conflict
///    free. Optimal under the no-combining count: each of the t members
///    of group i must cross the single-wavelength coupler (i, j).
///  - personalized all-to-all: same slot structure, but a transmission
///    carries only individual packets; counted, not knowledge-based.

#include "collectives/schedule.hpp"
#include "hypergraph/pops.hpp"

namespace otis::collectives {

/// One-slot broadcast from `root` (paper Sec. 1's one-to-many step).
[[nodiscard]] SlotSchedule pops_one_to_all(const hypergraph::Pops& network,
                                           hypergraph::Node root);

/// t-slot gossip: every node learns every token.
[[nodiscard]] SlotSchedule pops_gossip(const hypergraph::Pops& network);

/// Lower bound on gossip slots for POPS(t, g) without combining:
/// coupler (i,j) must carry one transmission per member of group i.
[[nodiscard]] std::int64_t pops_gossip_lower_bound(
    const hypergraph::Pops& network);

}  // namespace otis::collectives
