// Perf F1: throughput/latency of stack-Kautz vs POPS at equal N = 72
// under uniform traffic -- the evaluation the companion paper [11] runs
// on a testbed and we run on the slotted simulator (the paper itself has
// no measured tables; this regenerates the comparison its Sec. 1
// positioning implies).
//
// Driven through the campaign subsystem: one declarative grid (2
// topologies x 7 loads x 5 seeds), one compiled routing table per
// topology, seeds folded into mean +/- stddev by the aggregate sink.
//
// Expected shape: POPS (single-hop, 144 couplers) saturates at higher
// per-node throughput; stack-Kautz (48 couplers, diameter 2) delivers
// lower latency-at-low-load than its hop count suggests only if load is
// small, and saturates earlier because packets consume ~mean-hops
// coupler slots each.

#include <iostream>
#include <memory>
#include <vector>

#include "campaign/runner.hpp"
#include "core/csv.hpp"
#include "core/table.hpp"

namespace {

using otis::campaign::AggregateSink;
using otis::sim::SweepPoint;

/// Groups of one topology in load order (the campaign expands loads in
/// spec order, so filtering preserves it).
std::vector<SweepPoint> points_of(const AggregateSink& aggregate,
                                  const std::string& topology) {
  std::vector<SweepPoint> points;
  for (const AggregateSink::Group& group : aggregate.groups()) {
    if (group.topology == topology) {
      points.push_back(group.point);
    }
  }
  return points;
}

}  // namespace

int main() {
  std::cout << "[Perf F1] SK(6,3,2) vs POPS(6,12), N = 72, uniform "
               "traffic, token arbitration, 5 seeds (campaign API)\n\n";
  const std::vector<double> loads{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9};

  otis::campaign::CampaignSpec spec;
  spec.name = "perf1-throughput-latency";
  spec.topologies = {otis::campaign::TopologySpec::stack_kautz(6, 3, 2),
                     otis::campaign::TopologySpec::pops(6, 12)};
  spec.loads = loads;
  spec.seeds = {1, 2, 3, 4, 5};
  spec.warmup_slots = 300;
  spec.measure_slots = 1500;

  auto aggregate = std::make_shared<AggregateSink>();
  otis::campaign::CampaignRunner runner(spec);
  runner.add_sink(aggregate);
  otis::campaign::CampaignOptions options;
  options.threads = 0;  // all cores; output is thread-count invariant
  runner.run(options);

  const std::vector<SweepPoint> sk_points = points_of(*aggregate, "SK(6,3,2)");
  const std::vector<SweepPoint> pops_points =
      points_of(*aggregate, "POPS(6,12)");

  otis::core::Table table({"load", "SK thr", "SK lat", "SK p95",
                           "SK util", "POPS thr", "POPS lat", "POPS p95",
                           "POPS util"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    table.add(loads[i], sk_points[i].throughput_per_node,
              sk_points[i].mean_latency, sk_points[i].p95_latency,
              sk_points[i].coupler_utilization,
              pops_points[i].throughput_per_node,
              pops_points[i].mean_latency, pops_points[i].p95_latency,
              pops_points[i].coupler_utilization);
  }
  table.print(std::cout);

  // Emit the series as CSV for replotting (now with across-seed stddev).
  {
    otis::core::CsvWriter csv(
        "perf1_throughput_latency.csv",
        {"load", "network", "throughput_per_node", "throughput_stddev",
         "mean_latency", "mean_latency_stddev", "p95_latency",
         "coupler_utilization", "delivered_fraction"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
      csv.write_row({otis::core::format_double(loads[i], 3), "SK(6,3,2)",
                     otis::core::format_double(sk_points[i].throughput_per_node, 4),
                     otis::core::format_double(sk_points[i].throughput_stddev, 4),
                     otis::core::format_double(sk_points[i].mean_latency, 3),
                     otis::core::format_double(sk_points[i].mean_latency_stddev, 3),
                     otis::core::format_double(sk_points[i].p95_latency, 1),
                     otis::core::format_double(sk_points[i].coupler_utilization, 4),
                     otis::core::format_double(sk_points[i].delivered_fraction, 4)});
      csv.write_row({otis::core::format_double(loads[i], 3), "POPS(6,12)",
                     otis::core::format_double(pops_points[i].throughput_per_node, 4),
                     otis::core::format_double(pops_points[i].throughput_stddev, 4),
                     otis::core::format_double(pops_points[i].mean_latency, 3),
                     otis::core::format_double(pops_points[i].mean_latency_stddev, 3),
                     otis::core::format_double(pops_points[i].p95_latency, 1),
                     otis::core::format_double(pops_points[i].coupler_utilization, 4),
                     otis::core::format_double(pops_points[i].delivered_fraction, 4)});
    }
    std::cout << "\nseries written to perf1_throughput_latency.csv\n";
  }

  // Shape checks: POPS latency ~1 slot and full delivery at low load;
  // SK latency sits between 1 and its diameter + queueing; POPS
  // saturation throughput exceeds SK's (it has 3x the couplers and
  // 1 hop/packet vs ~1.9).
  const bool pops_low_latency = pops_points[0].mean_latency < 1.6;
  const bool sk_low_latency = sk_points[0].mean_latency >= 1.0 &&
                              sk_points[0].mean_latency < 3.5;
  const bool pops_wins_saturation =
      pops_points.back().throughput_per_node >
      sk_points.back().throughput_per_node;
  const bool low_load_delivery = sk_points[0].delivered_fraction > 0.95 &&
                                 pops_points[0].delivered_fraction > 0.95;
  std::cout << "\nshapes: POPS one-slot latency at low load: "
            << (pops_low_latency ? "yes" : "NO")
            << "; SK latency in [1, k + queueing): "
            << (sk_low_latency ? "yes" : "NO")
            << "; POPS saturates higher (3x couplers, 1 hop): "
            << (pops_wins_saturation ? "yes" : "NO")
            << "; low-load delivery > 95%: "
            << (low_load_delivery ? "yes" : "NO") << "\n"
            << "(hardware context: POPS(6,12) pays 144 couplers and 12 "
               "tx/node; SK(6,3,2) pays 48 couplers and 4 tx/node)\n";
  const bool ok = pops_low_latency && sk_low_latency &&
                  pops_wins_saturation && low_load_delivery;
  return ok ? 0 : 1;
}
