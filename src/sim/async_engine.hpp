#pragma once
/// \file async_engine.hpp
/// Asynchronous timed-event engine behind Engine::kAsync.
///
/// The phased engines treat a slot as indivisible; this engine runs the
/// same generate / tune / arbitrate / propagate / receive cycle as timed
/// events over sub-slot ticks (kTicksPerSlot per slot), honouring a
/// TimingModel:
///
///   generate   -- a node's packet enters its VOQ at the slot boundary;
///   tune       -- the packet becomes *eligible* once its transmitter
///                 has tuned: ready = arrival + tuning(coupler); the
///                 transmitter also re-tunes after each transmission
///                 (dead time), so a VOQ that sent in slot t is next
///                 eligible at (t+1)*slot + tuning -- under backlog the
///                 tuning latency throttles the per-transmitter service
///                 rate, though a coupler's other feeds can cover the
///                 gap (stacking hides tuning dead time);
///   arbitrate  -- couplers still arbitrate at slot boundaries (the OPS
///                 hardware is slotted), but only over head packets that
///                 were ready guard ticks before the boundary;
///   propagate  -- a winner of slot t reaches its receivers at
///                 (t+1) * kTicksPerSlot + propagation(coupler), a
///                 calendar-queue event (bucket width = one slot);
///   receive    -- the arrival event delivers the packet or re-enqueues
///                 it at the relay, where the tune step repeats.
///
/// VOQs live in the timed structure-of-arrays arena (voq_arena.hpp) with
/// the phased engines' occupancy bitmasks (occupancy.hpp), so arbitration
/// scans only couplers with queued packets. When every tuning latency and
/// the guard are zero the eligibility gate provably always passes
/// (ready and retune never exceed the arbitrating boundary), so the
/// engine skips the gate reads -- and the per-transmission retune
/// bookkeeping -- outright and arbitrates straight off the occupancy
/// masks; otherwise it screens the occupancy bits through the gate into
/// a per-coupler eligibility mask.
///
/// In the slot-aligned limit (every delay zero) each step degenerates to
/// its phased counterpart at the same boundary in the same order, with
/// the same single RNG stream consumed identically -- so the engine is
/// bit-identical to PhasedEngineT for every seed, topology, arbitration
/// policy and route-table representation (tests/test_async_engine.cpp).
/// With nonzero skew the run remains a pure function of the seed and the
/// timing model.
///
/// Engine::kAsyncSharded runs the same timed cycle as a conservative
/// parallel discrete-event simulation: nodes are partitioned into
/// contiguous shard ranges whose cuts never split a coupler's feed set
/// (so a coupler, its feed VOQs and its retune gates are all owned by
/// one worker), each shard advances an independent CalendarQueue, and
/// workers run freely inside windows of `lookahead` slots -- a
/// transmission in slot t lands no earlier than (t+1) * kTicksPerSlot +
/// min_propagation, so lookahead = 1 + floor(min_propagation /
/// kTicksPerSlot) slots of any shard's future are unaffected by the
/// others (the bounded-window barrier relaxation DARSIM documents for
/// registered hardware). Cross-shard arrivals travel through per-pair
/// mailboxes drained at the window barrier; every calendar push carries
/// an explicit global sequence key ((slot * couplers + coupler) *
/// wavelengths + winner), so per-queue pop order equals the serial
/// engine's single-queue order and results are invariant across thread
/// counts. Open-loop sharded runs draw from the per-node/per-coupler
/// stream universe (== the sharded phased engine when slot-aligned);
/// workload runs are bit-identical to serial Engine::kAsync.

#include <cstdint>
#include <vector>

#include "hypergraph/stack_graph.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "routing/route_view.hpp"
#include "sim/metrics.hpp"
#include "sim/occupancy.hpp"
#include "sim/ops_network.hpp"
#include "sim/timing_model.hpp"
#include "sim/traffic.hpp"
#include "sim/voq_arena.hpp"

namespace otis::sim {

/// Internal engine used by OpsNetworkSim for Engine::kAsync.
/// Single-run object: construct, run() once.
template <routing::RouteView Routes>
class AsyncEngineT {
 public:
  /// All references must outlive the engine. `config` must be validated
  /// by the caller (OpsNetworkSim does); `timing` must be sized for
  /// `network`.
  AsyncEngineT(const hypergraph::StackGraph& network, const Routes& routes,
               TrafficGenerator& traffic, const SimConfig& config,
               const TimingModel& timing);

  /// Runs the configured window; returns measurement-window metrics and
  /// fills per-coupler success counts (sized to the coupler count).
  /// When SimConfig::workload is set the run is closed-loop instead:
  /// run-to-completion with delivery feedback and makespan (see
  /// phased_engine.hpp) -- deliveries land per the timing model, so a
  /// skewed workload run shows how tuning/propagation stretch a
  /// collective's critical path. In the slot-aligned limit workload
  /// runs are bit-identical to the phased engines (which share the
  /// per-node/per-coupler workload RNG streams).
  RunMetrics run(std::vector<std::int64_t>& coupler_success);

 private:
  RunMetrics run_workload(std::vector<std::int64_t>& coupler_success);
  RunMetrics run_sharded(std::vector<std::int64_t>& coupler_success);
  RunMetrics run_workload_sharded(std::vector<std::int64_t>& coupler_success);
  /// True when no tuning latency and no guard band exist: the
  /// eligibility gate cannot fail, so occupancy alone decides
  /// contention (see file comment).
  [[nodiscard]] bool gates_open() const;

  /// Feed-local partition for Engine::kAsyncSharded: contiguous node
  /// ranges whose cuts never split a coupler's feed set, and per-shard
  /// coupler lists (ascending ids, possibly non-contiguous) owned by
  /// the shard holding the coupler's feed nodes.
  struct ShardPlan {
    std::vector<std::int64_t> node_cut;   ///< threads + 1 cut positions
    std::vector<std::int32_t> node_owner;  ///< node -> shard index
    std::vector<std::vector<hypergraph::HyperarcId>> couplers;
  };
  [[nodiscard]] ShardPlan plan_shards(int threads) const;
  [[nodiscard]] int clamp_threads() const;
  /// Conservative window width in slots (>= 1; see file comment).
  [[nodiscard]] SimTime lookahead_slots() const;

  const hypergraph::StackGraph& network_;
  const Routes& routes_;
  TrafficGenerator& traffic_;
  const SimConfig& config_;
  const TimingModel& timing_;

  std::int64_t nodes_ = 0;
  std::int64_t couplers_ = 0;
  /// Flat VOQ index space: node v's queues are voq_base_[v] + slot.
  std::vector<std::int64_t> voq_base_;
  /// Feed -> VOQ map and request-mask geometry (immutable per network).
  detail::FeedIndex feed_;
  /// Per-VOQ transmitter re-tune gate: earliest tick the queue's next
  /// head may transmit after the previous transmission.
  std::vector<SimTime> retune_;
  std::vector<std::int64_t> token_;
};

/// The dense-table instantiation.
using AsyncEngine = AsyncEngineT<routing::CompiledRoutes>;

extern template class AsyncEngineT<routing::CompiledRoutes>;
extern template class AsyncEngineT<routing::CompressedRoutes>;

}  // namespace otis::sim
