#include "routing/compressed_routes.hpp"

#include <limits>

#include "core/error.hpp"
#include "core/work_pool.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/generic_stack_routing.hpp"
#include "routing/stack_routing.hpp"

namespace otis::routing {

CompressedRoutes CompressedRoutes::layout(
    const hypergraph::StackGraph& network) {
  CompressedRoutes routes;
  routes.s_ = network.stacking_factor();
  routes.groups_ = network.base().order();
  routes.nodes_ = network.node_count();
  routes.couplers_ = network.hypergraph().hyperarc_count();
  OTIS_REQUIRE(routes.nodes_ <= std::numeric_limits<std::int32_t>::max() &&
                   routes.couplers_ <= std::numeric_limits<std::int32_t>::max(),
               "CompressedRoutes: network too large for int32 tables");
  const std::size_t g = static_cast<std::size_t>(routes.groups_);
  routes.group_next_coupler_.assign(g * g, -1);
  routes.group_next_slot_.assign(g * g, -1);
  // Relay bases are pure topology: coupler h targets the s copies of its
  // base arc's head, so the relay for dest is head*s + (dest mod s).
  routes.relay_base_.resize(static_cast<std::size_t>(routes.couplers_));
  for (hypergraph::HyperarcId h = 0; h < routes.couplers_; ++h) {
    const graph::Arc arc = network.base().arc(network.arc_of_coupler(h));
    routes.relay_base_[static_cast<std::size_t>(h)] =
        static_cast<std::int32_t>(arc.head * routes.s_);
  }
  return routes;
}

CompressedRoutes CompressedRoutes::compile(
    const hypergraph::StackGraph& network, const NextCouplerFn& next_coupler,
    const RelayFn& relay_on, core::WorkStealingPool* pool) {
  OTIS_REQUIRE(next_coupler && relay_on,
               "CompressedRoutes: routing callbacks must be set");
  CompressedRoutes routes = layout(network);
  const std::int64_t s = routes.s_;
  // One work item per source group: row gx writes exactly the pre-sized
  // entries [gx*G, (gx+1)*G) of both tables, so rows are independent and
  // the parallel fill is bit-identical to the serial one.
  const auto compile_row = [&](std::size_t row) {
    const auto gx = static_cast<graph::Vertex>(row);
    const hypergraph::Node src = network.node_of(gx, 0);
    for (graph::Vertex gy = 0; gy < routes.groups_; ++gy) {
      // Same-group traffic exists only for s >= 2; with s == 1 the
      // (gx, gx) entry stays -1 and is never queried.
      if (gx == gy && s < 2) {
        continue;
      }
      const hypergraph::Node dest =
          gx == gy ? network.node_of(gy, 1) : network.node_of(gy, 0);
      const hypergraph::HyperarcId h = next_coupler(src, dest);
      const std::int64_t slot = network.out_slot_of(src, h);
      OTIS_REQUIRE(slot >= 0,
                   "CompressedRoutes: router chose a coupler the node "
                   "cannot feed");
      const std::size_t at = static_cast<std::size_t>(gx) *
                                 static_cast<std::size_t>(routes.groups_) +
                             static_cast<std::size_t>(gy);
      routes.group_next_coupler_[at] = static_cast<std::int32_t>(h);
      routes.group_next_slot_[at] = static_cast<std::int32_t>(slot);
      OTIS_REQUIRE(
          relay_on(h, dest) == routes.relay(h, dest),
          "CompressedRoutes: relay is not index-preserving (relay_on does "
          "not pick the target-group copy with the destination's index)");
      if (s >= 2) {
        // Spot-check factoredness on a second representative pair: the
        // top copy of the source group and a different dest copy must
        // make the same group decision and follow the same relay form.
        const hypergraph::Node src2 = network.node_of(gx, s - 1);
        const hypergraph::Node dest2 =
            gx == gy ? network.node_of(gy, 0) : network.node_of(gy, s - 1);
        OTIS_REQUIRE(next_coupler(src2, dest2) == h,
                     "CompressedRoutes: router is not group-factored "
                     "(copies of the same group pick different couplers)");
        OTIS_REQUIRE(
            relay_on(h, dest2) == routes.relay(h, dest2),
            "CompressedRoutes: relay is not index-preserving for all "
            "copies of the destination group");
      }
    }
  };
  const auto rows = static_cast<std::size_t>(routes.groups_);
  if (pool != nullptr && pool->thread_count() > 1 && routes.groups_ > 1) {
    pool->run(rows, compile_row);
  } else {
    for (std::size_t row = 0; row < rows; ++row) {
      compile_row(row);
    }
  }
  return routes;
}

CompressedRoutes CompressedRoutes::compress(
    const hypergraph::StackGraph& network, const CompiledRoutes& dense) {
  OTIS_REQUIRE(dense.node_count() == network.node_count(),
               "CompressedRoutes: dense table was compiled for another "
               "network");
  CompressedRoutes routes = layout(network);
  for (hypergraph::Node v = 0; v < routes.nodes_; ++v) {
    for (hypergraph::Node d = 0; d < routes.nodes_; ++d) {
      if (v == d) {
        continue;
      }
      const std::int32_t h = static_cast<std::int32_t>(dense.next_coupler(v, d));
      const std::int32_t slot = dense.next_slot(v, d);
      const std::size_t at = routes.group_index(v, d);
      std::int32_t& coupler_entry = routes.group_next_coupler_[at];
      if (coupler_entry < 0) {
        coupler_entry = h;
        routes.group_next_slot_[at] = slot;
      } else {
        OTIS_REQUIRE(coupler_entry == h && routes.group_next_slot_[at] == slot,
                     "CompressedRoutes: dense table is not group-factored "
                     "(copies of the same group pick different couplers)");
      }
      OTIS_REQUIRE(dense.relay(h, d) == routes.relay(h, d),
                   "CompressedRoutes: dense relay is not index-preserving");
    }
  }
  return routes;
}

CompressedRoutes::NextCouplerFn CompressedRoutes::next_coupler_fn() const {
  return [this](hypergraph::Node node, hypergraph::Node dest) {
    return next_coupler(node, dest);
  };
}

CompressedRoutes::RelayFn CompressedRoutes::relay_fn() const {
  return [this](hypergraph::HyperarcId coupler, hypergraph::Node dest) {
    return relay(coupler, dest);
  };
}

CompressedRoutes compress_stack_kautz_routes(
    const hypergraph::StackKautz& network, core::WorkStealingPool* pool) {
  const StackKautzRouter router(network);
  return CompressedRoutes::compile(
      network.stack(),
      [&router](hypergraph::Node c, hypergraph::Node d) {
        return router.next_coupler(c, d);
      },
      [&router](hypergraph::HyperarcId h, hypergraph::Node d) {
        return router.relay_on(h, d);
      },
      pool);
}

CompressedRoutes compress_pops_routes(const hypergraph::Pops& network,
                                      core::WorkStealingPool* pool) {
  const PopsRouter router(network);
  return CompressedRoutes::compile(
      network.stack(),
      [&router](hypergraph::Node c, hypergraph::Node d) {
        return router.next_coupler(c, d);
      },
      [](hypergraph::HyperarcId, hypergraph::Node d) { return d; }, pool);
}

CompressedRoutes compress_generic_stack_routes(
    const hypergraph::StackGraph& network, core::WorkStealingPool* pool) {
  const GenericStackRouter router(network);
  return CompressedRoutes::compile(
      network,
      [&router](hypergraph::Node c, hypergraph::Node d) {
        return router.next_coupler(c, d);
      },
      [&router](hypergraph::HyperarcId h, hypergraph::Node d) {
        return router.relay_on(h, d);
      },
      pool);
}

CompressedRoutes compress_stack_imase_itoh_routes(
    const hypergraph::StackImaseItoh& network, core::WorkStealingPool* pool) {
  return compress_generic_stack_routes(network.stack(), pool);
}

}  // namespace otis::routing
