// Perf F4: collective communication on the paper's networks -- the
// one-to-many capability its Sec. 1 motivates. Regenerates optimal slot
// counts for one-to-all and gossip on POPS(t,g) and SK(s,d,k), validates
// every schedule against the single-wavelength constraint, and executes
// it under the combining model to prove completion.
//
// Expected shape: POPS broadcasts in 1 slot and gossips in t; SK
// broadcasts in k (its diameter -- optimal) and gossips in s + k. The
// multi-OPS point: a broadcast informs a whole group per transmission,
// so slot counts are independent of N for fixed (t,g)/(s,d,k) shape.

#include <iostream>

#include "collectives/pops_collectives.hpp"
#include "collectives/schedule.hpp"
#include "collectives/stack_kautz_collectives.hpp"
#include "core/table.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_kautz.hpp"

int main() {
  std::cout << "[Perf F4] collective communication slot counts\n\n";
  otis::core::Table table({"network", "N", "operation", "slots",
                           "transmissions", "bound", "complete"});
  bool ok = true;

  struct PopsParams {
    std::int64_t t, g;
  };
  for (const PopsParams& p : {PopsParams{4, 2}, PopsParams{6, 12},
                              PopsParams{8, 8}}) {
    otis::hypergraph::Pops pops(p.t, p.g);
    const std::string name =
        "POPS(" + std::to_string(p.t) + "," + std::to_string(p.g) + ")";
    // one-to-all
    {
      auto schedule = otis::collectives::pops_one_to_all(pops, 0);
      const bool valid =
          otis::collectives::validate_schedule(pops.stack(), schedule)
              .empty();
      auto after = otis::collectives::run_schedule(
          pops.stack(), schedule,
          otis::collectives::initial_knowledge(pops.processor_count()));
      const bool complete =
          otis::collectives::broadcast_complete(after, 0);
      table.add(name, pops.processor_count(), "one-to-all",
                schedule.slot_count(), schedule.transmission_count(),
                std::int64_t{1}, valid && complete);
      ok = ok && valid && complete && schedule.slot_count() == 1;
    }
    // gossip
    {
      auto schedule = otis::collectives::pops_gossip(pops);
      const bool valid =
          otis::collectives::validate_schedule(pops.stack(), schedule)
              .empty();
      auto after = otis::collectives::run_schedule(
          pops.stack(), schedule,
          otis::collectives::initial_knowledge(pops.processor_count()));
      const bool complete = otis::collectives::gossip_complete(after);
      table.add(name, pops.processor_count(), "gossip",
                schedule.slot_count(), schedule.transmission_count(),
                otis::collectives::pops_gossip_lower_bound(pops),
                valid && complete);
      ok = ok && valid && complete && schedule.slot_count() == p.t;
    }
  }

  struct SkParams {
    std::int64_t s;
    int d, k;
  };
  for (const SkParams& p : {SkParams{6, 3, 2}, SkParams{2, 2, 3},
                            SkParams{4, 2, 2}}) {
    otis::hypergraph::StackKautz sk(p.s, p.d, p.k);
    const std::string name = "SK(" + std::to_string(p.s) + "," +
                             std::to_string(p.d) + "," +
                             std::to_string(p.k) + ")";
    {
      auto schedule = otis::collectives::stack_kautz_one_to_all(sk, 0);
      const bool valid =
          otis::collectives::validate_schedule(sk.stack(), schedule).empty();
      auto after = otis::collectives::run_schedule(
          sk.stack(), schedule,
          otis::collectives::initial_knowledge(sk.processor_count()));
      const bool complete = otis::collectives::broadcast_complete(after, 0);
      table.add(name, sk.processor_count(), "one-to-all",
                schedule.slot_count(), schedule.transmission_count(),
                otis::collectives::stack_kautz_broadcast_lower_bound(sk),
                valid && complete);
      ok = ok && valid && complete && schedule.slot_count() == p.k;
    }
    {
      auto schedule = otis::collectives::stack_kautz_gossip(sk);
      const bool valid =
          otis::collectives::validate_schedule(sk.stack(), schedule).empty();
      auto after = otis::collectives::run_schedule(
          sk.stack(), schedule,
          otis::collectives::initial_knowledge(sk.processor_count()));
      const bool complete = otis::collectives::gossip_complete(after);
      table.add(name, sk.processor_count(), "gossip",
                schedule.slot_count(), schedule.transmission_count(),
                static_cast<std::int64_t>(p.s + p.k), valid && complete);
      ok = ok && valid && complete &&
           schedule.slot_count() == p.s + p.k;
    }
  }

  table.print(std::cout);
  std::cout << "\nPOPS broadcast is 1 slot; SK broadcast equals its "
               "diameter (optimal); all schedules single-wavelength valid "
               "and complete: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
