#include "obs/runtime_stats.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "obs/trace_sink.hpp"

namespace otis::obs {

RuntimeStatsWriter::RuntimeStatsWriter(std::string path)
    : path_(std::move(path)) {
  if (!path_.empty()) {
    out_.open(path_, std::ios::out | std::ios::trunc);
    OTIS_REQUIRE(out_.is_open(),
                 "RuntimeStatsWriter: cannot open " + path_);
  }
}

void RuntimeStatsWriter::append(const std::string& line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) {
    out_ << line << '\n';
  }
  ++rows_;
}

void RuntimeStatsWriter::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) {
    out_.flush();
  }
}

void RuntimeStatsWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) {
    out_.close();
  }
}

std::int64_t RuntimeStatsWriter::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_;
}

RuntimeStats::RuntimeStats(std::shared_ptr<RuntimeStatsWriter> writer,
                           std::string label, bool active, bool owns_writer)
    : label_(std::move(label)),
      active_(active),
      owns_writer_(owns_writer),
      writer_(std::move(writer)) {}

std::shared_ptr<RuntimeStats> RuntimeStats::create(
    const RuntimeStatsConfig& config) {
  std::shared_ptr<RuntimeStatsWriter> writer;
  if (config.enabled()) {
    writer = std::make_shared<RuntimeStatsWriter>(config.path);
  }
  return std::shared_ptr<RuntimeStats>(new RuntimeStats(
      std::move(writer), "run", config.enabled(), /*owns_writer=*/true));
}

std::shared_ptr<RuntimeStats> RuntimeStats::attach(
    std::shared_ptr<RuntimeStatsWriter> writer, std::string label) {
  OTIS_REQUIRE(writer != nullptr, "RuntimeStats: writer must be set");
  return std::shared_ptr<RuntimeStats>(new RuntimeStats(
      std::move(writer), std::move(label), /*active=*/true,
      /*owns_writer=*/false));
}

void RuntimeStats::ensure_header() {
  // Callers hold mutex_. One schema row per session label, before its
  // first data row -- the timeseries writer's convention.
  if (header_written_ || writer_ == nullptr) {
    return;
  }
  header_written_ = true;
  std::ostringstream row;
  row << "{\"type\":\"schema\",\"channel\":\"runtime\",\"cell\":\""
      << detail::json_escaped(label_)
      << "\",\"rows\":[\"shard\",\"workers\",\"cell_summary\"],"
      << "\"note\":\"wall-clock derived; nondeterministic by design\"}";
  writer_->append(row.str());
}

void RuntimeStats::append_row(const std::string& line) {
  if (writer_ != nullptr) {
    writer_->append(line);
  }
}

void RuntimeStats::record_shards(const std::string& engine,
                                 const std::string& mode,
                                 std::int64_t wall_ns,
                                 const std::vector<ShardRuntime>& shards) {
  std::lock_guard<std::mutex> lock(mutex_);
  ensure_header();
  if (folded_.size() < shards.size()) {
    folded_.resize(shards.size());
  }
  wall_ns_ += wall_ns;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardRuntime& s = shards[i];
    ShardRuntime& f = folded_[i];
    f.barrier_wait_ns += s.barrier_wait_ns;
    f.work_ns += s.work_ns;
    f.windows += s.windows;
    f.lookahead_used += s.lookahead_used;
    f.lookahead_available += s.lookahead_available;
    f.mailbox_msgs_sent += s.mailbox_msgs_sent;
    f.mailbox_bytes_sent += s.mailbox_bytes_sent;
    f.mailbox_msgs_replayed += s.mailbox_msgs_replayed;
    f.calendar_peak = std::max(f.calendar_peak, s.calendar_peak);
    std::ostringstream row;
    row << "{\"type\":\"shard\",\"cell\":\"" << detail::json_escaped(label_)
        << "\",\"engine\":\"" << detail::json_escaped(engine)
        << "\",\"mode\":\"" << detail::json_escaped(mode)
        << "\",\"shard\":" << i << ",\"shards\":" << shards.size()
        << ",\"barrier_wait_ns\":" << s.barrier_wait_ns
        << ",\"work_ns\":" << s.work_ns << ",\"windows\":" << s.windows
        << ",\"lookahead_used\":" << s.lookahead_used
        << ",\"lookahead_available\":" << s.lookahead_available
        << ",\"mailbox_msgs_sent\":" << s.mailbox_msgs_sent
        << ",\"mailbox_bytes_sent\":" << s.mailbox_bytes_sent
        << ",\"mailbox_msgs_replayed\":" << s.mailbox_msgs_replayed
        << ",\"calendar_peak\":" << s.calendar_peak
        << ",\"wall_ns\":" << wall_ns << "}";
    append_row(row.str());
  }
}

void RuntimeStats::record_workers(std::int64_t wall_ns,
                                  const std::vector<WorkerRuntime>& workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  ensure_header();
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const WorkerRuntime& s = workers[w];
    std::ostringstream row;
    row << "{\"type\":\"workers\",\"cell\":\"" << detail::json_escaped(label_)
        << "\",\"worker\":" << w << ",\"workers\":" << workers.size()
        << ",\"busy_ns\":" << s.busy_ns << ",\"idle_ns\":" << s.idle_ns
        << ",\"steal_ns\":" << s.steal_ns << ",\"items\":" << s.items
        << ",\"steals\":" << s.steals << ",\"wall_ns\":" << wall_ns << "}";
    append_row(row.str());
  }
}

RuntimeStats::StallSummary RuntimeStats::stall_summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  StallSummary summary;
  summary.shards = static_cast<std::int64_t>(folded_.size());
  summary.wall_ns = wall_ns_;
  if (folded_.empty()) {
    return summary;
  }
  std::int64_t total_time = 0;
  std::int64_t max_wait = 0;
  for (const ShardRuntime& s : folded_) {
    summary.barrier_wait_ns += s.barrier_wait_ns;
    total_time += s.barrier_wait_ns + s.work_ns;
    max_wait = std::max(max_wait, s.barrier_wait_ns);
  }
  if (total_time > 0) {
    summary.stall_share = static_cast<double>(summary.barrier_wait_ns) /
                          static_cast<double>(total_time);
  }
  // The straggler waits least: everyone else's wait is (mostly) time
  // spent waiting for it. Blame each shard by its deficit against the
  // longest waiter and normalize.
  std::int64_t blame_total = 0;
  std::int64_t blame_max = 0;
  std::size_t blame_arg = 0;
  for (std::size_t i = 0; i < folded_.size(); ++i) {
    const std::int64_t blame = max_wait - folded_[i].barrier_wait_ns;
    blame_total += blame;
    if (blame > blame_max) {
      blame_max = blame;
      blame_arg = i;
    }
  }
  if (blame_total > 0) {
    summary.blamed_shard = static_cast<std::int64_t>(blame_arg);
    summary.blamed_share = static_cast<double>(blame_max) /
                           static_cast<double>(blame_total);
  }
  return summary;
}

void RuntimeStats::finish() {
  const StallSummary summary = stall_summary();
  std::lock_guard<std::mutex> lock(mutex_);
  if (summary.shards > 0) {
    ensure_header();
    std::ostringstream row;
    row << "{\"type\":\"cell_summary\",\"cell\":\""
        << detail::json_escaped(label_) << "\",\"shards\":" << summary.shards
        << ",\"wall_ns\":" << summary.wall_ns
        << ",\"barrier_wait_ns\":" << summary.barrier_wait_ns
        << ",\"stall_share\":" << summary.stall_share
        << ",\"blamed_shard\":" << summary.blamed_shard
        << ",\"blamed_share\":" << summary.blamed_share << "}";
    append_row(row.str());
  }
  if (writer_ != nullptr) {
    writer_->flush();
  }
}

std::int64_t RuntimeStats::rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return writer_ != nullptr ? writer_->rows() : 0;
}

void RuntimeStats::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (owns_writer_ && writer_ != nullptr) {
    writer_->close();
  }
}

}  // namespace otis::obs
