#pragma once
/// \file compressed_routes.hpp
/// Group-factored compressed routing tables for stack-graph networks.
///
/// Every router this library ships is *group-factored*: on a stack-graph
/// sigma(s, G) the coupler a node transmits on depends only on the
/// (source group, destination group) pair, and the node that picks a
/// packet off a coupler is always the member of the coupler's target
/// group whose in-group copy index equals the destination's. (That is
/// the paper's routing convention for SK/SII -- "the processor whose
/// index matches the destination's relays" -- and trivially true for
/// single-hop POPS.) CompiledRoutes ignores this structure and stores
/// O(N^2 + H*N) int32 entries; CompressedRoutes stores the per-group
/// decisions instead:
///   - group_next_coupler(gx, gy), group_next_slot(gx, gy): O(G^2),
///   - relay_base(coupler) = first node of the coupler's target group:
///     O(H),
/// and recovers the per-node answers with the group/copy arithmetic
/// node -> (node / s, node % s). A hop is still two array loads plus two
/// integer divisions -- no virtual dispatch -- and the memory drops from
/// O(N^2 + H*N) to O(G^2 + H), which is what makes N ~ 10^5 simulations
/// fit in RAM (see README "Route-table memory models").
///
/// Two construction paths:
///   - compile(): evaluates the routing callbacks on group
///     representatives only -- O(G^2) router calls, the dense table is
///     never materialized. Group-factoredness is spot-checked on a
///     second copy representative per pair and the relay convention is
///     verified per decision; a non-factored router throws.
///   - compress(): folds an existing dense CompiledRoutes, verifying
///     every (node, dest) pair against the factored form -- the
///     exhaustive cross-check for small instances (tests use it to
///     prove compile() and the dense tables agree everywhere).

#include <cstdint>
#include <functional>
#include <vector>

#include "hypergraph/stack_graph.hpp"

namespace otis::core {
class WorkStealingPool;
}  // namespace otis::core

namespace otis::hypergraph {
class Pops;
class StackImaseItoh;
class StackKautz;
}  // namespace otis::hypergraph

namespace otis::routing {

class CompiledRoutes;

/// Per-(group, group) next-coupler/next-slot tables plus per-coupler
/// relay bases; a RouteView (see route_view.hpp).
class CompressedRoutes {
 public:
  using NextCouplerFn =
      std::function<hypergraph::HyperarcId(hypergraph::Node, hypergraph::Node)>;
  using RelayFn =
      std::function<hypergraph::Node(hypergraph::HyperarcId, hypergraph::Node)>;

  /// Bakes group-level tables by evaluating the callbacks on group
  /// representatives (O(G^2) calls). Throws core::Error when the
  /// callbacks are detectably not group-factored or break the
  /// index-preserving relay convention.
  ///
  /// With `pool` set the per-source-group rows are spread across its
  /// workers; each row writes only its own pre-sized [gx*G, (gx+1)*G)
  /// table range, so the parallel result is bit-identical to serial
  /// (the callbacks must be const-thread-safe, which every shipped
  /// router is -- they are pure table/arithmetic lookups).
  static CompressedRoutes compile(const hypergraph::StackGraph& network,
                                  const NextCouplerFn& next_coupler,
                                  const RelayFn& relay_on,
                                  core::WorkStealingPool* pool = nullptr);

  /// Folds a dense table into the group-factored form, verifying every
  /// (node, dest) pair on the way -- O(N^2), for small instances and
  /// tests. Throws core::Error when the dense table is not
  /// group-factored.
  static CompressedRoutes compress(const hypergraph::StackGraph& network,
                                   const CompiledRoutes& dense);

  [[nodiscard]] std::int64_t node_count() const noexcept { return nodes_; }
  [[nodiscard]] std::int64_t coupler_count() const noexcept {
    return couplers_;
  }
  [[nodiscard]] std::int64_t group_count() const noexcept { return groups_; }
  [[nodiscard]] std::int64_t stacking_factor() const noexcept { return s_; }

  /// Coupler a packet at `node` heading to `dest` transmits on. Defined
  /// for node != dest (for node == dest it returns the same-group
  /// decision, not the dense tables' -1 diagonal).
  [[nodiscard]] hypergraph::HyperarcId next_coupler(
      hypergraph::Node node, hypergraph::Node dest) const noexcept {
    return group_next_coupler_[group_index(node, dest)];
  }

  /// VOQ slot (position in out_hyperarcs(node)) of that coupler; the
  /// slot is group-uniform because a stack node's out-couplers are its
  /// base vertex's CSR arc range.
  [[nodiscard]] std::int32_t next_slot(hypergraph::Node node,
                                       hypergraph::Node dest) const noexcept {
    return group_next_slot_[group_index(node, dest)];
  }

  /// Node that consumes a packet for `dest` heard on `coupler`: the
  /// copy of the coupler's target group with the destination's index.
  [[nodiscard]] hypergraph::Node relay(hypergraph::HyperarcId coupler,
                                       hypergraph::Node dest) const noexcept {
    return relay_base_[static_cast<std::size_t>(coupler)] + dest % s_;
  }

  /// Hints the cache toward the relay base of `coupler` (the group
  /// tables fit in cache, so only the per-coupler base can miss; the
  /// destination term is pure arithmetic).
  void prefetch_relay(hypergraph::HyperarcId coupler,
                      hypergraph::Node /*dest*/) const noexcept {
    __builtin_prefetch(relay_base_.data() +
                       static_cast<std::size_t>(coupler));
  }

  /// Bytes held by the baked tables (the O(G^2 + H) footprint).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return (group_next_coupler_.size() + group_next_slot_.size() +
            relay_base_.size()) *
           sizeof(std::int32_t);
  }

  /// The tables re-exposed as callbacks (event-queue engine, legacy
  /// call sites). Capture `this`; keep the object alive and unmoved.
  [[nodiscard]] NextCouplerFn next_coupler_fn() const;
  [[nodiscard]] RelayFn relay_fn() const;

 private:
  [[nodiscard]] std::size_t group_index(hypergraph::Node node,
                                        hypergraph::Node dest) const noexcept {
    return static_cast<std::size_t>(node / s_) *
               static_cast<std::size_t>(groups_) +
           static_cast<std::size_t>(dest / s_);
  }

  /// Sizes the tables and fills relay_base_ from the topology alone.
  static CompressedRoutes layout(const hypergraph::StackGraph& network);

  std::int64_t s_ = 1;
  std::int64_t groups_ = 0;
  std::int64_t nodes_ = 0;
  std::int64_t couplers_ = 0;
  std::vector<std::int32_t> group_next_coupler_;  // [group][dest group]
  std::vector<std::int32_t> group_next_slot_;     // [group][dest group]
  std::vector<std::int32_t> relay_base_;  // [coupler] target group's node 0
};

/// Kautz label routing on SK(s, d, k), compiled directly at group
/// granularity (the dense table is never materialized). A non-null
/// `pool` parallelizes the row loop (bit-identical output).
[[nodiscard]] CompressedRoutes compress_stack_kautz_routes(
    const hypergraph::StackKautz& network,
    core::WorkStealingPool* pool = nullptr);

/// Single-hop POPS routing, group-compiled.
[[nodiscard]] CompressedRoutes compress_pops_routes(
    const hypergraph::Pops& network, core::WorkStealingPool* pool = nullptr);

/// Table-driven shortest-path routing for any stack-graph,
/// group-compiled (the BFS tables are per base vertex already).
[[nodiscard]] CompressedRoutes compress_generic_stack_routes(
    const hypergraph::StackGraph& network,
    core::WorkStealingPool* pool = nullptr);

/// Shortest-path routing on SII(s, d, n), group-compiled.
[[nodiscard]] CompressedRoutes compress_stack_imase_itoh_routes(
    const hypergraph::StackImaseItoh& network,
    core::WorkStealingPool* pool = nullptr);

}  // namespace otis::routing
