#include "routing/table_router.hpp"

#include <queue>

#include "core/error.hpp"

namespace otis::routing {

TableRouter::TableRouter(const graph::Digraph& g) : n_(g.order()) {
  const std::size_t cells =
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_);
  dist_.assign(cells, -1);
  next_hop_.assign(cells, -1);
  // Reverse adjacency once; BFS from every *target* v over the reverse
  // graph discovers, for each u, the distance and (via the arc that
  // relaxed u) a first hop on a forward shortest path.
  std::vector<std::vector<graph::Vertex>> reverse(
      static_cast<std::size_t>(n_));
  for (const graph::Arc& a : g.arcs()) {
    reverse[static_cast<std::size_t>(a.head)].push_back(a.tail);
  }
  std::queue<graph::Vertex> queue;
  for (graph::Vertex v = 0; v < n_; ++v) {
    dist_[at(v, v)] = 0;
    queue.push(v);
    while (!queue.empty()) {
      const graph::Vertex w = queue.front();
      queue.pop();
      for (graph::Vertex u : reverse[static_cast<std::size_t>(w)]) {
        if (dist_[at(u, v)] < 0) {
          dist_[at(u, v)] = dist_[at(w, v)] + 1;
          next_hop_[at(u, v)] = static_cast<std::int32_t>(w);
          queue.push(u);
        }
      }
    }
  }
}

std::int64_t TableRouter::distance(graph::Vertex u, graph::Vertex v) const {
  OTIS_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
               "TableRouter::distance: vertex out of range");
  return dist_[at(u, v)];
}

graph::Vertex TableRouter::next_hop(graph::Vertex u, graph::Vertex v) const {
  OTIS_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
               "TableRouter::next_hop: vertex out of range");
  return next_hop_[at(u, v)];
}

std::vector<graph::Vertex> TableRouter::route(graph::Vertex u,
                                              graph::Vertex v) const {
  std::vector<graph::Vertex> path;
  if (distance(u, v) < 0) {
    return path;
  }
  path.push_back(u);
  graph::Vertex current = u;
  while (current != v) {
    current = next_hop(current, v);
    OTIS_ASSERT(current >= 0, "TableRouter: broken next-hop chain");
    path.push_back(current);
  }
  return path;
}

}  // namespace otis::routing
