// fault_injection: demonstrates the fault-tolerant routing the paper
// inherits from Imase-Soneoka-Okada [17]: on KG(d,k), up to d-1 node
// faults leave a route of length <= k+2, computable from labels alone.
//
// Kills random processors-groups, routes across the surviving network,
// and reports path-length inflation and how often the label-computable
// detour candidates sufficed (vs. the BFS fallback).
//
// Usage: fault_injection [--d=3] [--k=3] [--faults=2] [--trials=500]
//                        [--seed=7]

#include <iostream>

#include "core/args.hpp"
#include "core/rng.hpp"
#include "core/table.hpp"
#include "routing/fault_tolerant.hpp"
#include "topology/kautz.hpp"

int main(int argc, char** argv) {
  otis::core::Args args(argc, argv, {"d", "k", "faults", "trials", "seed"});
  const int d = static_cast<int>(args.get_int("d", 3));
  const int k = static_cast<int>(args.get_int("k", 3));
  const int faults = static_cast<int>(args.get_int("faults", d - 1));
  const int trials = static_cast<int>(args.get_int("trials", 500));
  otis::core::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));

  otis::topology::Kautz kautz(d, k);
  otis::routing::FaultTolerantKautzRouter router(kautz);
  std::cout << "fault-tolerant routing on KG(" << d << "," << k << ") ("
            << kautz.order() << " nodes, diameter " << k << ")\n"
            << "injecting " << faults << " node faults per trial, " << trials
            << " trials\n"
            << "claim (paper Sec. 2.5 / ref [17]): with <= d-1 = " << d - 1
            << " faults, a route of length <= k+2 = " << k + 2
            << " survives\n\n";

  std::int64_t within_bound = 0;
  std::int64_t label_only = 0;
  std::int64_t bfs_fallback = 0;
  std::int64_t disconnected = 0;
  std::int64_t worst = 0;
  double total_length = 0;
  std::int64_t routed = 0;

  for (int trial = 0; trial < trials; ++trial) {
    auto picks = rng.sample_without_replacement(
        static_cast<std::size_t>(kautz.order()),
        static_cast<std::size_t>(faults) + 2);
    const std::int64_t source = static_cast<std::int64_t>(picks[0]);
    const std::int64_t target = static_cast<std::int64_t>(picks[1]);
    std::vector<std::int64_t> faulty(picks.begin() + 2, picks.end());
    auto route = router.route_avoiding(source, target, faulty);
    if (!route) {
      ++disconnected;
      continue;
    }
    const std::int64_t length =
        static_cast<std::int64_t>(route->path.size()) - 1;
    ++routed;
    total_length += static_cast<double>(length);
    worst = std::max(worst, length);
    within_bound += length <= k + 2 ? 1 : 0;
    if (route->used_bfs_fallback) {
      ++bfs_fallback;
    } else {
      ++label_only;
    }
  }

  otis::core::Table table({"metric", "value"});
  table.add("routes found", routed);
  table.add("disconnected pairs", disconnected);
  table.add("within k+2 bound", within_bound);
  table.add("label-computable detour sufficed", label_only);
  table.add("needed BFS fallback", bfs_fallback);
  table.add("mean route length", routed ? total_length / routed : 0.0);
  table.add("worst route length", worst);
  table.print(std::cout);

  if (faults <= d - 1 && (disconnected > 0 || within_bound != routed)) {
    std::cerr << "\nUNEXPECTED: the k+2 / d-1 guarantee was violated\n";
    return 1;
  }
  std::cout << "\nguarantee held on every trial\n";
  return 0;
}
