#include "obs/probe.hpp"

#include "core/error.hpp"

namespace otis::obs {

ProbeId ProbeRegistry::register_probe(Meta meta) {
  OTIS_REQUIRE(!meta.name.empty(), "ProbeRegistry: probe name must be set");
  for (const Meta& existing : probes_) {
    OTIS_REQUIRE(existing.name != meta.name,
                 "ProbeRegistry: duplicate probe \"" + meta.name + "\"");
  }
  meta.slot = values_.size();
  values_.resize(values_.size() + meta.slots, 0);
  probes_.push_back(std::move(meta));
  return static_cast<ProbeId>(probes_.size() - 1);
}

ProbeId ProbeRegistry::counter(const std::string& name) {
  Meta meta;
  meta.name = name;
  meta.kind = ProbeKind::kCounter;
  return register_probe(std::move(meta));
}

ProbeId ProbeRegistry::gauge(const std::string& name) {
  Meta meta;
  meta.name = name;
  meta.kind = ProbeKind::kGauge;
  return register_probe(std::move(meta));
}

ProbeId ProbeRegistry::histogram(const std::string& name,
                                 std::vector<std::int64_t> upper_bounds) {
  OTIS_REQUIRE(!upper_bounds.empty(),
               "ProbeRegistry: histogram needs at least one bound");
  for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
    OTIS_REQUIRE(upper_bounds[i - 1] < upper_bounds[i],
                 "ProbeRegistry: histogram bounds must be increasing");
  }
  Meta meta;
  meta.name = name;
  meta.kind = ProbeKind::kHistogram;
  meta.slots = upper_bounds.size() + 1;  // + overflow bucket
  meta.bounds = std::move(upper_bounds);
  return register_probe(std::move(meta));
}

void ProbeRegistry::observe(ProbeId id, std::int64_t value) {
  const Meta& meta = probes_[id];
  std::size_t bucket = meta.bounds.size();  // overflow by default
  for (std::size_t i = 0; i < meta.bounds.size(); ++i) {
    if (value <= meta.bounds[i]) {
      bucket = i;
      break;
    }
  }
  ++values_[meta.slot + bucket];
}

void ProbeRegistry::clear_histogram(ProbeId id) {
  const Meta& meta = probes_[id];
  for (std::size_t i = 0; i < meta.slots; ++i) {
    values_[meta.slot + i] = 0;
  }
}

void ProbeRegistry::zero() {
  values_.assign(values_.size(), 0);
}

ProbeRegistry ProbeRegistry::clone_schema() const {
  ProbeRegistry clone;
  clone.probes_ = probes_;
  clone.values_.assign(values_.size(), 0);
  return clone;
}

void ProbeRegistry::accumulate(const ProbeRegistry& shard) {
  OTIS_REQUIRE(shard.values_.size() == values_.size() &&
                   shard.probes_.size() == probes_.size(),
               "ProbeRegistry: accumulate needs matching schemas");
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += shard.values_[i];
  }
}

}  // namespace otis::obs
