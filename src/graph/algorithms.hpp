#pragma once
/// \file algorithms.hpp
/// Classic digraph algorithms used to certify the topology constructions:
/// distances and diameter (the paper's headline parameters), strong
/// connectivity, Eulerian/Hamiltonian structure of Kautz graphs, girth.

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace otis::graph {

/// Distance marker for unreachable vertices.
inline constexpr std::int64_t kUnreachable = -1;

/// BFS distances from `source` (kUnreachable where no path exists).
[[nodiscard]] std::vector<std::int64_t> bfs_distances(const Digraph& g,
                                                      Vertex source);

/// One shortest path from `source` to `target` (vertex sequence including
/// both endpoints), or std::nullopt if unreachable.
[[nodiscard]] std::optional<std::vector<Vertex>> shortest_path(
    const Digraph& g, Vertex source, Vertex target);

/// Shortest path avoiding the vertices in `forbidden` (endpoints are never
/// treated as forbidden). Used by the fault-tolerance experiments.
[[nodiscard]] std::optional<std::vector<Vertex>> shortest_path_avoiding(
    const Digraph& g, Vertex source, Vertex target,
    const std::vector<Vertex>& forbidden);

/// Shortest path avoiding the (tail, head) arcs in `forbidden_arcs`
/// (every parallel copy of a listed arc is treated as down). Models the
/// paper's "link faults".
[[nodiscard]] std::optional<std::vector<Vertex>> shortest_path_avoiding_arcs(
    const Digraph& g, Vertex source, Vertex target,
    const std::vector<Arc>& forbidden_arcs);

/// Aggregate distance statistics from all-pairs BFS.
struct DistanceStats {
  std::int64_t diameter = 0;       ///< max finite distance
  std::int64_t radius = 0;         ///< min eccentricity
  double mean_distance = 0.0;      ///< over ordered pairs u != v
  bool strongly_connected = true;  ///< false if any pair unreachable
};

/// Runs BFS from every vertex. Loops do not affect distances. O(V(V+E)).
[[nodiscard]] DistanceStats distance_stats(const Digraph& g);

/// Diameter convenience wrapper (throws if not strongly connected).
[[nodiscard]] std::int64_t diameter(const Digraph& g);

/// True if every ordered pair is connected by a directed path.
[[nodiscard]] bool is_strongly_connected(const Digraph& g);

/// True if g has an Eulerian circuit: connected (ignoring isolated
/// vertices) and in-degree == out-degree everywhere.
[[nodiscard]] bool is_eulerian(const Digraph& g);

/// Finds a Hamiltonian cycle by backtracking. Exponential in the worst
/// case: intended for the small instances in the paper's figures
/// (order <= ~100 with pruning). Returns the cycle as a vertex sequence
/// of length order() (closing arc back to front implied), or nullopt.
[[nodiscard]] std::optional<std::vector<Vertex>> find_hamiltonian_cycle(
    const Digraph& g, std::int64_t max_steps = 20'000'000);

/// Length of the shortest directed cycle ignoring loops; nullopt if
/// acyclic (apart from loops).
[[nodiscard]] std::optional<std::int64_t> girth_ignoring_loops(
    const Digraph& g);

/// Verifies that `path` is a directed walk in g from path.front() to
/// path.back() (every consecutive pair is an arc).
[[nodiscard]] bool is_walk(const Digraph& g, const std::vector<Vertex>& path);

}  // namespace otis::graph
