#include "graph/digraph.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace otis::graph {

Digraph::Digraph(Vertex order) {
  OTIS_REQUIRE(order >= 0, "Digraph: negative order");
  offsets_.assign(static_cast<std::size_t>(order) + 1, 0);
  indeg_.assign(static_cast<std::size_t>(order), 0);
}

Digraph Digraph::from_arcs(Vertex order, const std::vector<Arc>& arcs) {
  Digraph g(order);
  // Counting sort by tail keeps construction O(V + E) and preserves the
  // relative order of arcs sharing a tail (stability matters for arc ids).
  for (const Arc& a : arcs) {
    g.check_vertex(a.tail);
    g.check_vertex(a.head);
    ++g.offsets_[static_cast<std::size_t>(a.tail) + 1];
  }
  for (std::size_t v = 1; v < g.offsets_.size(); ++v) {
    g.offsets_[v] += g.offsets_[v - 1];
  }
  g.heads_.resize(arcs.size());
  std::vector<ArcId> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Arc& a : arcs) {
    g.heads_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(a.tail)]++)] = a.head;
    ++g.indeg_[static_cast<std::size_t>(a.head)];
  }
  return g;
}

void Digraph::check_vertex(Vertex v) const {
  OTIS_REQUIRE(v >= 0 && v < order(), "Digraph: vertex out of range");
}

std::vector<Vertex> Digraph::out_neighbors(Vertex v) const {
  check_vertex(v);
  return std::vector<Vertex>(
      heads_.begin() + static_cast<std::ptrdiff_t>(out_begin(v)),
      heads_.begin() + static_cast<std::ptrdiff_t>(out_end(v)));
}

ArcId Digraph::out_begin(Vertex v) const {
  check_vertex(v);
  return offsets_[static_cast<std::size_t>(v)];
}

ArcId Digraph::out_end(Vertex v) const {
  check_vertex(v);
  return offsets_[static_cast<std::size_t>(v) + 1];
}

std::int64_t Digraph::out_degree(Vertex v) const {
  return out_end(v) - out_begin(v);
}

std::int64_t Digraph::in_degree(Vertex v) const {
  check_vertex(v);
  return indeg_[static_cast<std::size_t>(v)];
}

Vertex Digraph::head(ArcId a) const {
  OTIS_REQUIRE(a >= 0 && a < size(), "Digraph: arc id out of range");
  return heads_[static_cast<std::size_t>(a)];
}

Vertex Digraph::tail(ArcId a) const {
  OTIS_REQUIRE(a >= 0 && a < size(), "Digraph: arc id out of range");
  auto it = std::upper_bound(offsets_.begin(), offsets_.end(), a);
  return static_cast<Vertex>(it - offsets_.begin()) - 1;
}

std::vector<Arc> Digraph::arcs() const {
  std::vector<Arc> result;
  result.reserve(static_cast<std::size_t>(size()));
  for (Vertex v = 0; v < order(); ++v) {
    for (ArcId a = out_begin(v); a < out_end(v); ++a) {
      result.push_back(Arc{v, heads_[static_cast<std::size_t>(a)]});
    }
  }
  return result;
}

bool Digraph::has_arc(Vertex u, Vertex v) const {
  check_vertex(v);
  for (ArcId a = out_begin(u); a < out_end(u); ++a) {
    if (heads_[static_cast<std::size_t>(a)] == v) {
      return true;
    }
  }
  return false;
}

std::int64_t Digraph::arc_multiplicity(Vertex u, Vertex v) const {
  check_vertex(v);
  std::int64_t count = 0;
  for (ArcId a = out_begin(u); a < out_end(u); ++a) {
    if (heads_[static_cast<std::size_t>(a)] == v) {
      ++count;
    }
  }
  return count;
}

std::int64_t Digraph::loop_count() const {
  std::int64_t count = 0;
  for (Vertex v = 0; v < order(); ++v) {
    count += arc_multiplicity(v, v);
  }
  return count;
}

bool Digraph::is_regular(std::int64_t d) const {
  for (Vertex v = 0; v < order(); ++v) {
    if (out_degree(v) != d || in_degree(v) != d) {
      return false;
    }
  }
  return true;
}

bool Digraph::same_arcs(const Digraph& other) const {
  if (order() != other.order() || size() != other.size()) {
    return false;
  }
  return sorted_arcs(*this) == sorted_arcs(other);
}

std::vector<Arc> sorted_arcs(const Digraph& g) {
  std::vector<Arc> arcs = g.arcs();
  std::sort(arcs.begin(), arcs.end());
  return arcs;
}

}  // namespace otis::graph
