#pragma once
/// \file trace.hpp
/// Packet traces: record the (generation slot, source, destination)
/// stream of any simulation and replay it bit-identically later -- the
/// trace-driven counterpart of the synthetic generators, as in
/// trace-driven multicore NoC simulators (e.g. HORNET).
///
/// A trace is canonical: entries sorted by (slot, source), at most one
/// entry per (slot, source) pair (a node generates at most one packet
/// per slot), all endpoints in range. Canonical form is what makes a
/// recorded trace independent of which engine -- and for the sharded
/// engine, which worker interleaving -- produced it.
///
/// Two serializations:
///  - binary: "OTISTRC1" magic, then node count, entry count and the
///    (slot, src, dst) triples as little-endian int64 -- compact and
///    O(1) per entry to parse;
///  - JSONL: a {"nodes": N, "entries": M} header line followed by one
///    {"slot", "src", "dst"} object per line -- greppable and diffable.
/// Trace::load sniffs the magic and accepts either.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.hpp"
#include "workload/workload.hpp"

namespace otis::workload {

/// One generated packet.
struct TraceEntry {
  std::int64_t slot = 0;  ///< generation slot (>= 0, non-decreasing)
  hypergraph::Node source = 0;
  hypergraph::Node destination = 0;

  friend bool operator==(const TraceEntry&, const TraceEntry&) = default;
};

/// A canonical packet trace (see file comment for the invariants).
struct Trace {
  std::int64_t nodes = 0;
  std::vector<TraceEntry> entries;

  /// Throws core::Error on any invariant violation: node count < 1,
  /// negative slots, slots not non-decreasing, duplicate (slot, source)
  /// pairs, endpoints out of range, source == destination.
  void validate() const;

  void save_binary(const std::string& path) const;
  void save_jsonl(const std::string& path) const;

  /// Loads either serialization (sniffs the binary magic) and
  /// validates. Throws core::Error on unreadable, truncated or
  /// invariant-violating input.
  [[nodiscard]] static Trace load(const std::string& path);

  friend bool operator==(const Trace&, const Trace&) = default;
};

/// Captures the generation stream of a running simulation. Attach one
/// via SimConfig::recorder; the phased, sharded and async engines call
/// record() for every open-loop packet they generate. record() is
/// thread-safe (the sharded engine generates concurrently); trace()
/// folds the buffer into canonical order, so the result is identical
/// whichever engine -- and worker interleaving -- produced it.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::int64_t nodes);

  [[nodiscard]] std::int64_t node_count() const noexcept { return nodes_; }

  void record(std::int64_t slot, hypergraph::Node source,
              hypergraph::Node destination);

  /// Canonical snapshot of everything recorded so far.
  [[nodiscard]] Trace trace() const;

 private:
  std::int64_t nodes_ = 0;
  mutable std::mutex mutex_;
  std::vector<TraceEntry> entries_;
};

/// Replays a trace as a Workload: entry i becomes packet i, eligible
/// exactly at its recorded slot (replay is open-loop in time but runs
/// to completion like every workload). Driving the replay with the
/// same arbitration policy on any engine, route table or thread count
/// yields bit-identical delivery metrics -- the workload RNG contract
/// (per-coupler arbitration streams) removes every other source of
/// randomness.
class TraceWorkload : public Workload {
 public:
  /// Validates the trace.
  explicit TraceWorkload(Trace trace);

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }

  [[nodiscard]] std::int64_t packet_count() const override {
    return static_cast<std::int64_t>(trace_.entries.size());
  }
  [[nodiscard]] std::int64_t node_count() const override {
    return trace_.nodes;
  }
  void reset() override;
  void poll(std::int64_t slot, std::vector<WorkloadPacket>& out) override;
  void delivered(std::int64_t id) override;
  [[nodiscard]] bool done() const override {
    return delivered_count_ == packet_count();
  }

 private:
  Trace trace_;
  std::size_t cursor_ = 0;
  std::int64_t delivered_count_ = 0;
};

}  // namespace otis::workload
