#pragma once
/// \file mathutil.hpp
/// Small integer math helpers used throughout the topology constructions.
///
/// The Imase-Itoh adjacency rule `v = (-d*u - alpha) mod n` works with
/// negative values, so the floor-style modulo here (result always in
/// [0, n)) is load-bearing: C++ `%` truncates toward zero instead.

#include <cstdint>

namespace otis::core {

/// Mathematical (floor) modulo: result is in [0, n) for n > 0, even for
/// negative `value`.
[[nodiscard]] std::int64_t floor_mod(std::int64_t value,
                                     std::int64_t n) noexcept;

/// Integer power base^exp; throws on overflow of int64.
[[nodiscard]] std::int64_t ipow(std::int64_t base, unsigned exp);

/// Smallest k with base^k >= value (value >= 1, base >= 2); this is
/// ceil(log_base(value)). Matches the Imase-Itoh diameter formula
/// `diameter(II(d, n)) = ceil(log_d n)`.
[[nodiscard]] unsigned ceil_log(std::int64_t base, std::int64_t value);

/// Largest k with base^k <= value (value >= 1, base >= 2).
[[nodiscard]] unsigned floor_log(std::int64_t base, std::int64_t value);

/// Greatest common divisor (non-negative result).
[[nodiscard]] std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept;

/// True when value == base^k for some k >= 0.
[[nodiscard]] bool is_power_of(std::int64_t base, std::int64_t value);

/// Number of Kautz vertices: d^(k-1) * (d+1). Throws on overflow.
[[nodiscard]] std::int64_t kautz_order(int degree, int diameter);

}  // namespace otis::core
