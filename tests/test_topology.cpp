// Tests for the topology constructions: complete digraphs, Imase-Itoh
// graphs, Kautz graphs with the word <-> integer bijection, de Bruijn
// baselines. Parameterized sweeps check the paper's structural claims
// (order, degree, diameter, Eulerian/Hamiltonian, Corollary 1 identity).

#include <gtest/gtest.h>

#include <set>

#include "core/error.hpp"
#include "core/mathutil.hpp"
#include "graph/algorithms.hpp"
#include "graph/isomorphism.hpp"
#include "graph/line_digraph.hpp"
#include "topology/complete.hpp"
#include "topology/debruijn.hpp"
#include "topology/imase_itoh.hpp"
#include "topology/kautz.hpp"

namespace otis::topology {
namespace {

TEST(Complete, WithoutLoops) {
  graph::Digraph g = complete_digraph(4, Loops::kWithout);
  EXPECT_EQ(g.order(), 4);
  EXPECT_EQ(g.size(), 12);
  EXPECT_EQ(g.loop_count(), 0);
  EXPECT_TRUE(g.is_regular(3));
}

TEST(Complete, WithLoopsEqualsImaseItohOfSameOrder) {
  // K+_g == II(g, g): the identity behind using OTIS(g,g) as the POPS
  // interconnect (paper Sec. 4.1, Fig. 5).
  for (std::int64_t g = 1; g <= 6; ++g) {
    graph::Digraph complete = complete_digraph(g, Loops::kWith);
    EXPECT_EQ(complete.size(), g * g);
    EXPECT_EQ(complete.loop_count(), g);
    ImaseItoh ii(static_cast<int>(g), g);
    EXPECT_TRUE(complete.same_arcs(ii.graph()))
        << "K+_" << g << " != II(" << g << "," << g << ")";
  }
}

TEST(ImaseItoh, SuccessorFormula) {
  ImaseItoh ii(3, 12);
  // Node 0: v = (-alpha) mod 12 for alpha = 1..3 -> 11, 10, 9.
  EXPECT_EQ(ii.successors(0), (std::vector<std::int64_t>{11, 10, 9}));
  // Node 5: v = (-15 - alpha) mod 12 -> alpha=1: -16 mod 12 = 8, then 7, 6.
  EXPECT_EQ(ii.successors(5), (std::vector<std::int64_t>{8, 7, 6}));
}

TEST(ImaseItoh, AlphaOfArcInvertsSuccessor) {
  ImaseItoh ii(4, 21);
  for (std::int64_t u = 0; u < 21; ++u) {
    for (int alpha = 1; alpha <= 4; ++alpha) {
      EXPECT_EQ(ii.alpha_of_arc(u, ii.successor(u, alpha)), alpha);
    }
  }
}

TEST(ImaseItoh, AlphaOfArcZeroForNonNeighbors) {
  ImaseItoh ii(2, 12);
  // Node 0's successors are 11 and 10; 5 is not one.
  EXPECT_EQ(ii.alpha_of_arc(0, 5), 0);
}

TEST(ImaseItoh, RejectsBadParameters) {
  EXPECT_THROW(ImaseItoh(0, 5), core::Error);
  EXPECT_THROW(ImaseItoh(5, 3), core::Error);
}

TEST(ImaseItoh, IsKautzDetection) {
  EXPECT_TRUE(ImaseItoh(3, 12).is_kautz());   // KG(3,2)
  EXPECT_TRUE(ImaseItoh(3, 4).is_kautz());    // KG(3,1)
  EXPECT_TRUE(ImaseItoh(2, 12).is_kautz());   // KG(2,3)
  EXPECT_FALSE(ImaseItoh(3, 13).is_kautz());
  EXPECT_FALSE(ImaseItoh(3, 9).is_kautz());
  EXPECT_EQ(ImaseItoh(3, 12).kautz_diameter(), 2);
  EXPECT_EQ(ImaseItoh(2, 12).kautz_diameter(), 3);
}

/// Sweep: the Imase-Itoh diameter theorem, diameter(II(d,n)) <=
/// ceil(log_d n), with equality in the generic case; checked by BFS.
class ImaseItohDiameterSweep
    : public ::testing::TestWithParam<std::pair<int, std::int64_t>> {};

TEST_P(ImaseItohDiameterSweep, DiameterWithinFormula) {
  const auto [d, n] = GetParam();
  ImaseItoh ii(d, n);
  graph::DistanceStats stats = graph::distance_stats(ii.graph());
  EXPECT_TRUE(stats.strongly_connected);
  EXPECT_LE(stats.diameter, static_cast<std::int64_t>(ii.diameter_formula()))
      << "II(" << d << "," << n << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImaseItohDiameterSweep,
    ::testing::Values(std::pair<int, std::int64_t>{2, 5},
                      std::pair<int, std::int64_t>{2, 12},
                      std::pair<int, std::int64_t>{2, 31},
                      std::pair<int, std::int64_t>{3, 12},
                      std::pair<int, std::int64_t>{3, 20},
                      std::pair<int, std::int64_t>{3, 36},
                      std::pair<int, std::int64_t>{4, 17},
                      std::pair<int, std::int64_t>{4, 80},
                      std::pair<int, std::int64_t>{5, 30},
                      std::pair<int, std::int64_t>{5, 150}));

TEST(ImaseItoh, RegularInAndOut) {
  for (int d = 2; d <= 4; ++d) {
    for (std::int64_t n : {7LL, 12LL, 25LL}) {
      ImaseItoh ii(d, n);
      EXPECT_TRUE(ii.graph().is_regular(d))
          << "II(" << d << "," << n << ") not " << d << "-regular";
    }
  }
}

TEST(Kautz, OrderDegreeMatchDefinition) {
  Kautz kg(3, 2);
  EXPECT_EQ(kg.order(), 12);
  EXPECT_EQ(kg.degree(), 3);
  EXPECT_EQ(kg.alphabet(), 4);
  EXPECT_TRUE(kg.graph().is_regular(3));
  EXPECT_EQ(kg.graph().loop_count(), 0);
}

TEST(Kautz, PaperSizeExample) {
  // Sec. 2.5 claims "KG(5,4) has N = 3750 nodes, degree 5 and diameter
  // 4"; by the paper's own formula N = d^{k-1}(d+1) that is 750 (3750 is
  // KG(5,5)). We verify the formula and record the typo in
  // EXPERIMENTS.md.
  Kautz kg(5, 4);
  EXPECT_EQ(kg.order(), 750);
  EXPECT_EQ(kg.degree(), 5);
  EXPECT_EQ(kg.diameter(), 4);
  EXPECT_EQ(Kautz(5, 5).order(), 3750);
}

TEST(Kautz, WordValidation) {
  Kautz kg(2, 3);
  EXPECT_TRUE(kg.is_valid_word({0, 1, 0}));
  EXPECT_FALSE(kg.is_valid_word({0, 0, 1}));  // repeated letter
  EXPECT_FALSE(kg.is_valid_word({0, 1}));     // wrong length
  EXPECT_FALSE(kg.is_valid_word({0, 3, 1}));  // letter out of alphabet
}

TEST(Kautz, WordVertexBijectionRoundTrip) {
  for (int d = 1; d <= 4; ++d) {
    for (int k = 1; k <= 3; ++k) {
      Kautz kg(d, k);
      std::set<std::int64_t> seen;
      for (const Word& w : kg.all_words()) {
        const std::int64_t v = kg.vertex_of(w);
        EXPECT_EQ(kg.word_of(v), w);
        seen.insert(v);
      }
      EXPECT_EQ(static_cast<std::int64_t>(seen.size()), kg.order());
    }
  }
}

TEST(Kautz, WordArcsMatchIntegerArcs) {
  // The bijection is an isomorphism: word shifts == II integer arcs.
  for (int d = 2; d <= 3; ++d) {
    for (int k = 2; k <= 3; ++k) {
      Kautz kg(d, k);
      for (std::int64_t v = 0; v < kg.order(); ++v) {
        const Word w = kg.word_of(v);
        std::set<std::int64_t> word_neighbors;
        for (int z = 0; z <= d; ++z) {
          if (z == w.back()) {
            continue;
          }
          word_neighbors.insert(kg.vertex_of(Kautz::shift(w, z)));
        }
        auto graph_neighbors = kg.graph().out_neighbors(v);
        std::set<std::int64_t> graph_set(graph_neighbors.begin(),
                                         graph_neighbors.end());
        EXPECT_EQ(word_neighbors, graph_set) << "vertex " << v;
      }
    }
  }
}

TEST(Kautz, EqualsImaseItohOfKautzOrder) {
  // Corollary 1's combinatorial half: KG(d,k) = II(d, d^{k-1}(d+1)),
  // arc-for-arc in our numbering, not just up to isomorphism.
  for (int d = 1; d <= 4; ++d) {
    for (int k = 1; k <= 3; ++k) {
      Kautz kg(d, k);
      ImaseItoh ii(d, kg.order());
      EXPECT_TRUE(kg.graph().same_arcs(ii.graph()))
          << "KG(" << d << "," << k << ")";
    }
  }
}

TEST(Kautz, LineDigraphIteration) {
  // Fig. 6: KG(d,k) = L(KG(d,k-1)); checked as abstract isomorphism.
  for (int d = 2; d <= 3; ++d) {
    for (int k = 2; k <= 3; ++k) {
      Kautz smaller(d, k - 1);
      Kautz larger(d, k);
      graph::Digraph line = graph::line_digraph(smaller.graph()).graph;
      EXPECT_EQ(line.order(), larger.order());
      // The II arc numbering phi(u, alpha) = d*u + alpha - 1 *is* the line
      // digraph vertex numbering, so the graphs must be equal outright.
      EXPECT_TRUE(line.same_arcs(larger.graph()))
          << "L(KG(" << d << "," << k - 1 << ")) != KG(" << d << "," << k
          << ")";
    }
  }
}

TEST(Kautz, DiameterIsExactlyK) {
  for (int d = 2; d <= 3; ++d) {
    for (int k = 1; k <= 3; ++k) {
      Kautz kg(d, k);
      EXPECT_EQ(graph::diameter(kg.graph()), k)
          << "KG(" << d << "," << k << ")";
    }
  }
}

TEST(Kautz, EulerianAndHamiltonian) {
  // Paper Sec. 2.5: "It is both Eulerian and Hamiltonian".
  Kautz kg(2, 2);  // 6 vertices
  EXPECT_TRUE(graph::is_eulerian(kg.graph()));
  EXPECT_TRUE(graph::find_hamiltonian_cycle(kg.graph()).has_value());
  Kautz kg3(3, 2);  // 12 vertices
  EXPECT_TRUE(graph::is_eulerian(kg3.graph()));
  EXPECT_TRUE(graph::find_hamiltonian_cycle(kg3.graph()).has_value());
}

TEST(Kautz, KG21IsK3) {
  // Fig. 6 leftmost: KG(2,1) is the complete digraph K_3.
  Kautz kg(2, 1);
  EXPECT_TRUE(kg.graph().same_arcs(complete_digraph(3, Loops::kWithout)));
}

TEST(Kautz, Fig6WordCountsAndSamples) {
  // Fig. 6 shows KG(2,2) with words 01,02,10,12,20,21 and KG(2,3) with
  // twelve 3-letter words.
  Kautz kg22(2, 2);
  std::set<std::string> words;
  for (const Word& w : kg22.all_words()) {
    words.insert(Kautz::word_to_string(w));
  }
  EXPECT_EQ(words, (std::set<std::string>{"01", "02", "10", "12", "20",
                                          "21"}));
  Kautz kg23(2, 3);
  EXPECT_EQ(kg23.order(), 12);
  // Spot-check an arc from the figure: 010 -> 101.
  const std::int64_t u = kg23.vertex_of({0, 1, 0});
  const std::int64_t v = kg23.vertex_of({1, 0, 1});
  EXPECT_TRUE(kg23.graph().has_arc(u, v));
}

TEST(Kautz, ShiftValidatesArguments) {
  EXPECT_THROW(Kautz::shift({0, 1}, 1), core::Error);
  EXPECT_EQ(Kautz::shift({0, 1}, 2), (Word{1, 2}));
}

TEST(Kautz, WordToString) {
  EXPECT_EQ(Kautz::word_to_string({1, 0, 2}), "102");
  EXPECT_EQ(Kautz::word_to_string({10, 2}), "10.2");
}

TEST(KautzWithLoops, DegreeAndLoops) {
  graph::Digraph g = kautz_with_loops(3, 2);
  EXPECT_EQ(g.order(), 12);
  EXPECT_EQ(g.loop_count(), 12);
  EXPECT_TRUE(g.is_regular(4));  // degree d+1 (paper Sec. 2.7)
}

TEST(KautzWithLoops, LoopIsLastOutArc) {
  graph::Digraph g = kautz_with_loops(2, 2);
  for (graph::Vertex v = 0; v < g.order(); ++v) {
    EXPECT_EQ(g.head(g.out_end(v) - 1), v);
  }
}

TEST(DeBruijn, OrderAndDegree) {
  DeBruijn db(2, 3);
  EXPECT_EQ(db.order(), 8);
  EXPECT_TRUE(db.graph().is_regular(2));
  // De Bruijn graphs have d loops (constant words) -- the structural
  // disadvantage vs Kautz the comparison benches report.
  EXPECT_EQ(db.graph().loop_count(), 2);
}

TEST(DeBruijn, DiameterIsDimension) {
  for (int d = 2; d <= 3; ++d) {
    for (int k = 2; k <= 3; ++k) {
      DeBruijn db(d, k);
      EXPECT_EQ(graph::diameter(db.graph()), k);
    }
  }
}

TEST(DeBruijn, WordShiftStructure) {
  DeBruijn db(2, 3);
  // 011 -> {110, 111}.
  const std::int64_t u = db.vertex_of({0, 1, 1});
  std::set<std::int64_t> expected{db.vertex_of({1, 1, 0}),
                                  db.vertex_of({1, 1, 1})};
  auto neighbors = db.graph().out_neighbors(u);
  std::set<std::int64_t> actual(neighbors.begin(), neighbors.end());
  EXPECT_EQ(actual, expected);
}

TEST(DeBruijn, WordRoundTrip) {
  DeBruijn db(3, 3);
  for (std::int64_t v = 0; v < db.order(); ++v) {
    EXPECT_EQ(db.vertex_of(db.word_of(v)), v);
  }
}

TEST(KautzVsDeBruijn, KautzHasMoreVerticesSameDegreeDiameter) {
  // The (d+1)/d vertex advantage at equal degree and diameter.
  for (int d = 2; d <= 4; ++d) {
    for (int k = 2; k <= 3; ++k) {
      Kautz kg(d, k);
      DeBruijn db(d, k);
      EXPECT_GT(kg.order(), db.order());
      EXPECT_EQ(kg.order(), db.order() / d * (d + 1));
    }
  }
}

}  // namespace
}  // namespace otis::topology
