// Tests for the obs telemetry subsystem:
//  - ProbeRegistry arithmetic: histogram bucketing and the
//    order-independent shard-merge (accumulate) contract;
//  - attaching telemetry never changes RunMetrics: bit-parity against
//    the untelemetered run on the phased, sharded, and async engines,
//    with and without sampling, in windowed and workload modes;
//  - thread-count invariance of the sampled artifacts: the sharded
//    engine's timeseries JSONL is byte-identical and the merged probe
//    values identical for every worker count;
//  - probe totals equal the RunMetrics they mirror;
//  - Chrome-trace output is well-formed JSON whose spans strictly nest
//    per track (round-tripped through core::Json);
//  - config validation: unknown probe names and the probe-less
//    event-queue engine are rejected.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/json.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "obs/probe.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_sink.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"
#include "workload/trace.hpp"

namespace {

using namespace otis;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Fresh scratch directory under the build tree's temp space.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag)
      : path_(std::filesystem::temp_directory_path() /
              ("otis_obs_" + tag + "_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

/// Exact equality of every metric, including the latency distribution.
void expect_identical(const sim::RunMetrics& a, const sim::RunMetrics& b) {
  EXPECT_EQ(a.slots, b.slots);
  EXPECT_EQ(a.offered_packets, b.offered_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.coupler_transmissions, b.coupler_transmissions);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.backlog, b.backlog);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_DOUBLE_EQ(a.latency.mean(), b.latency.mean());
  EXPECT_EQ(a.latency.max(), b.latency.max());
  EXPECT_EQ(a.latency.percentile(0.95), b.latency.percentile(0.95));
}

constexpr std::int64_t kWarmup = 50;
constexpr std::int64_t kMeasure = 400;

/// One SK(4,3,2) run with an optional telemetry session attached.
sim::RunMetrics run_sk(sim::Engine engine, int threads,
                       std::shared_ptr<obs::Telemetry> telemetry,
                       std::uint64_t seed = 42) {
  hypergraph::StackKautz sk(4, 3, 2);
  sim::SimConfig config;
  config.warmup_slots = kWarmup;
  config.measure_slots = kMeasure;
  config.seed = seed;
  config.engine = engine;
  config.threads = threads;
  config.telemetry = std::move(telemetry);
  sim::OpsNetworkSim sim(
      sk.stack(),
      std::make_shared<const routing::CompiledRoutes>(
          routing::compile_stack_kautz_routes(sk)),
      std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.35),
      config);
  return sim.run();
}

/// A small recorded workload for run-to-completion parity checks.
workload::Trace record_small_trace() {
  hypergraph::StackKautz sk(4, 3, 2);
  auto recorder =
      std::make_shared<workload::TraceRecorder>(sk.processor_count());
  sim::SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = 120;
  config.seed = 7;
  config.recorder = recorder;
  sim::OpsNetworkSim sim(
      sk.stack(),
      std::make_shared<const routing::CompiledRoutes>(
          routing::compile_stack_kautz_routes(sk)),
      std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.4),
      config);
  sim.run();
  return recorder->trace();
}

sim::RunMetrics run_workload(sim::Engine engine, int threads,
                             const workload::Trace& trace,
                             std::shared_ptr<obs::Telemetry> telemetry) {
  hypergraph::StackKautz sk(4, 3, 2);
  sim::SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = 1;  // ignored: workload runs go to completion
  config.seed = 7;
  config.engine = engine;
  config.threads = threads;
  config.workload = std::make_shared<workload::TraceWorkload>(trace);
  config.telemetry = std::move(telemetry);
  sim::OpsNetworkSim sim(
      sk.stack(),
      std::make_shared<const routing::CompiledRoutes>(
          routing::compile_stack_kautz_routes(sk)),
      std::make_unique<sim::UniformTraffic>(sk.processor_count(), 0.0),
      config);
  return sim.run();
}

obs::TelemetryConfig sampling_config(std::int64_t period,
                                     std::string timeseries_path = "",
                                     std::string trace_path = "") {
  obs::TelemetryConfig config;
  config.sample_period = period;
  config.timeseries_path = std::move(timeseries_path);
  config.trace_path = std::move(trace_path);
  return config;
}

TEST(ProbeRegistry, HistogramBucketsFollowUpperBounds) {
  obs::ProbeRegistry reg;
  const obs::ProbeId hist = reg.histogram("occ", {0, 1, 4});
  ASSERT_EQ(reg.bucket_count(hist), 4u);  // 3 bounds + overflow
  reg.observe(hist, 0);   // <= 0 -> bucket 0
  reg.observe(hist, 1);   // <= 1 -> bucket 1
  reg.observe(hist, 2);   // <= 4 -> bucket 2
  reg.observe(hist, 4);   // <= 4 -> bucket 2
  reg.observe(hist, 5);   // overflow
  reg.observe(hist, 99);  // overflow
  EXPECT_EQ(reg.bucket(hist, 0), 1);
  EXPECT_EQ(reg.bucket(hist, 1), 1);
  EXPECT_EQ(reg.bucket(hist, 2), 2);
  EXPECT_EQ(reg.bucket(hist, 3), 2);
  reg.clear_histogram(hist);
  for (std::size_t i = 0; i < reg.bucket_count(hist); ++i) {
    EXPECT_EQ(reg.bucket(hist, i), 0);
  }
}

TEST(ProbeRegistry, AccumulateIsOrderIndependent) {
  // The sharded merge folds per-shard clones with element-wise adds;
  // any fold order must give the same totals.
  obs::ProbeRegistry reg;
  const obs::ProbeId count = reg.counter("count");
  const obs::ProbeId level = reg.gauge("level");
  const obs::ProbeId hist = reg.histogram("hist", {1, 2});

  std::vector<obs::ProbeRegistry> shards;
  for (int s = 0; s < 3; ++s) {
    shards.push_back(reg.clone_schema());
    shards.back().add(count, 10 + s);
    shards.back().set(level, s);
    shards.back().observe(hist, s);
  }
  const auto fold = [&](const std::vector<int>& order) {
    obs::ProbeRegistry merged = reg.clone_schema();
    for (const int s : order) {
      merged.accumulate(shards[static_cast<std::size_t>(s)]);
    }
    return merged;
  };
  const obs::ProbeRegistry forward = fold({0, 1, 2});
  const obs::ProbeRegistry backward = fold({2, 1, 0});
  EXPECT_EQ(forward.value(count), 33);
  EXPECT_EQ(forward.value(level), 3);  // gauges sum across shards
  for (obs::ProbeId id = 0; id < forward.probe_count(); ++id) {
    if (forward.kind(id) == obs::ProbeKind::kHistogram) {
      for (std::size_t i = 0; i < forward.bucket_count(id); ++i) {
        EXPECT_EQ(forward.bucket(id, i), backward.bucket(id, i));
      }
    } else {
      EXPECT_EQ(forward.value(id), backward.value(id));
    }
  }
}

TEST(TelemetryConfig, RejectsUnknownProbeNames) {
  obs::TelemetryConfig config = sampling_config(16);
  config.probes = {"delivered", "bogus_probe"};
  EXPECT_THROW(obs::Telemetry::create(config), core::Error);
}

TEST(TelemetryConfig, EventQueueEngineRejectsTelemetry) {
  // The seed fixture has no probe points; attaching telemetry to it
  // must fail loudly rather than silently record nothing.
  EXPECT_THROW(run_sk(sim::Engine::kEventQueue, 1,
                      obs::Telemetry::create(sampling_config(16))),
               core::Error);
}

TEST(Telemetry, AttachedButDisabledIsMetricsExact) {
  const sim::RunMetrics off = run_sk(sim::Engine::kPhased, 1, nullptr);
  const sim::RunMetrics on =
      run_sk(sim::Engine::kPhased, 1, obs::Telemetry::create({}));
  expect_identical(off, on);
}

TEST(Telemetry, SamplingPreservesMetricsAndMirrorsThemInProbes) {
  const sim::RunMetrics off = run_sk(sim::Engine::kPhased, 1, nullptr);
  const auto tel = obs::Telemetry::create(sampling_config(64));
  const sim::RunMetrics on = run_sk(sim::Engine::kPhased, 1, tel);
  expect_identical(off, on);

  // End-of-run probe totals mirror the RunMetrics fields exactly.
  const obs::EngineProbes& ids = tel->engine_probes();
  const obs::ProbeRegistry& reg = tel->probes();
  EXPECT_EQ(reg.value(ids.offered), on.offered_packets);
  EXPECT_EQ(reg.value(ids.delivered), on.delivered_packets);
  EXPECT_EQ(reg.value(ids.transmissions), on.coupler_transmissions);
  EXPECT_EQ(reg.value(ids.collisions), on.collisions);
  EXPECT_EQ(reg.value(ids.dropped), on.dropped_packets);
  EXPECT_EQ(reg.value(ids.backlog), on.backlog);

  // One schema header, one row per full period, and the final partial
  // window.
  const std::int64_t horizon = kWarmup + kMeasure;
  const std::int64_t expected_rows =
      1 + horizon / 64 + (horizon % 64 != 0 ? 1 : 0);
  EXPECT_EQ(tel->rows_sampled(), expected_rows);
}

TEST(Telemetry, ShardedSamplingIsThreadCountInvariantToTheByte) {
  ScratchDir scratch("sharded");
  const sim::RunMetrics off = run_sk(sim::Engine::kSharded, 1, nullptr);

  std::string reference_bytes;
  std::vector<std::int64_t> reference_probes;
  for (const int threads : {1, 2, 5, 8}) {
    SCOPED_TRACE(threads);
    const std::filesystem::path path =
        scratch.path() / ("ts_" + std::to_string(threads) + ".jsonl");
    const auto tel = obs::Telemetry::create(sampling_config(64, path));
    const sim::RunMetrics on = run_sk(sim::Engine::kSharded, threads, tel);
    expect_identical(off, on);

    std::vector<std::int64_t> probes;
    const obs::ProbeRegistry& reg = tel->probes();
    for (obs::ProbeId id = 0; id < reg.probe_count(); ++id) {
      if (reg.kind(id) == obs::ProbeKind::kHistogram) {
        for (std::size_t i = 0; i < reg.bucket_count(id); ++i) {
          probes.push_back(reg.bucket(id, i));
        }
      } else {
        probes.push_back(reg.value(id));
      }
    }
    tel->close();
    const std::string bytes = read_file(path);
    EXPECT_GT(bytes.size(), 0u);
    if (reference_bytes.empty()) {
      reference_bytes = bytes;
      reference_probes = probes;
    } else {
      EXPECT_EQ(bytes, reference_bytes)
          << "timeseries bytes must not depend on the worker count";
      EXPECT_EQ(probes, reference_probes);
    }
  }
}

TEST(Telemetry, AsyncEngineSamplesWithoutChangingMetrics) {
  const sim::RunMetrics off = run_sk(sim::Engine::kAsync, 1, nullptr);
  const auto tel = obs::Telemetry::create(sampling_config(32));
  const sim::RunMetrics on = run_sk(sim::Engine::kAsync, 1, tel);
  expect_identical(off, on);
  EXPECT_GT(tel->rows_sampled(), 0);
  // The calendar queue drains before the run returns.
  EXPECT_EQ(tel->probes().value(tel->engine_probes().pending_events), 0);
}

TEST(Telemetry, WorkloadRunsAreMetricsExactWithSampling) {
  const workload::Trace trace = record_small_trace();
  for (const sim::Engine engine :
       {sim::Engine::kPhased, sim::Engine::kAsync}) {
    SCOPED_TRACE(sim::engine_name(engine));
    const sim::RunMetrics off = run_workload(engine, 1, trace, nullptr);
    const sim::RunMetrics on = run_workload(
        engine, 1, trace, obs::Telemetry::create(sampling_config(16)));
    expect_identical(off, on);
  }
  const sim::RunMetrics one = run_workload(
      sim::Engine::kSharded, 1, trace,
      obs::Telemetry::create(sampling_config(16)));
  for (const int threads : {2, 5, 8}) {
    SCOPED_TRACE(threads);
    const sim::RunMetrics many = run_workload(
        sim::Engine::kSharded, threads, trace,
        obs::Telemetry::create(sampling_config(16)));
    expect_identical(one, many);
  }
}

TEST(Telemetry, ChromeTraceIsWellFormedAndSpansNestPerTrack) {
  ScratchDir scratch("trace");
  const std::filesystem::path path = scratch.path() / "run.trace.json";
  const auto tel =
      obs::Telemetry::create(sampling_config(0, "", path.string()));
  run_sk(sim::Engine::kPhased, 1, tel);
  tel->close();

  // Round-trip through the JSON parser: structure, required fields,
  // and strict per-track nesting (events arrive sorted by start time).
  const core::Json doc = core::Json::parse_file(path.string());
  const std::vector<core::Json>& events = doc.at("traceEvents").items();
  ASSERT_GE(events.size(), 3u);  // sim.run + warmup + measure
  std::map<std::int64_t, std::vector<std::pair<std::int64_t, std::int64_t>>>
      stacks;  // tid -> open [start, end) spans
  std::vector<std::string> names;
  for (const core::Json& event : events) {
    EXPECT_EQ(event.at("ph").as_string(), "X");
    EXPECT_EQ(event.at("pid").as_int(), 0);
    const std::int64_t ts = event.at("ts").as_int();
    const std::int64_t dur = event.at("dur").as_int();
    EXPECT_GE(ts, 0);
    EXPECT_GE(dur, 0);
    names.push_back(event.at("name").as_string());
    auto& stack = stacks[event.at("tid").as_int()];
    while (!stack.empty() && stack.back().second <= ts) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      // A span overlapping an open one must lie fully inside it.
      EXPECT_GE(ts, stack.back().first);
      EXPECT_LE(ts + dur, stack.back().second);
    }
    stack.emplace_back(ts, ts + dur);
  }
  const auto has = [&](const std::string& name) {
    for (const std::string& n : names) {
      if (n == name) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has("sim.run"));
  EXPECT_TRUE(has("warmup"));
  EXPECT_TRUE(has("measure"));
}

}  // namespace
