# Empty dependencies file for test_otis.
# This may be replaced when dependencies are built.
