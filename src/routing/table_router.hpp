#pragma once
/// \file table_router.hpp
/// All-pairs next-hop routing tables for arbitrary digraphs.
///
/// The label routers (Kautz words, Imase-Itoh arithmetic) need no state;
/// this router trades O(V^2) memory for generality, serving topologies
/// without algebraic structure (OTIS-G swap networks, faulted graphs) and
/// acting as the reference implementation the algebraic routers are
/// tested against. Built with one BFS per vertex on the reverse graph,
/// so next_hop(u, v) always advances along a shortest u -> v path.

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace otis::routing {

/// Dense all-pairs shortest-path next-hop table.
class TableRouter {
 public:
  /// Precomputes tables; O(V * (V + E)) time, O(V^2) space.
  explicit TableRouter(const graph::Digraph& g);

  /// Exact distance, or -1 if unreachable.
  [[nodiscard]] std::int64_t distance(graph::Vertex u, graph::Vertex v) const;

  /// First hop of a shortest u -> v path; -1 if unreachable or u == v.
  [[nodiscard]] graph::Vertex next_hop(graph::Vertex u, graph::Vertex v) const;

  /// Full shortest path u .. v; empty if unreachable.
  [[nodiscard]] std::vector<graph::Vertex> route(graph::Vertex u,
                                                 graph::Vertex v) const;

  [[nodiscard]] graph::Vertex order() const noexcept { return n_; }

 private:
  [[nodiscard]] std::size_t at(graph::Vertex u, graph::Vertex v) const {
    return static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(v);
  }

  graph::Vertex n_ = 0;
  std::vector<std::int32_t> dist_;      // [u][v]
  std::vector<std::int32_t> next_hop_;  // [u][v]
};

}  // namespace otis::routing
