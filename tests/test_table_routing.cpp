// Tests for the dense table router, the generic stack router built on
// it, and the OTIS-G swap networks they serve.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/error.hpp"
#include "graph/algorithms.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "routing/generic_stack_routing.hpp"
#include "routing/imase_itoh_routing.hpp"
#include "routing/table_router.hpp"
#include "topology/complete.hpp"
#include "topology/debruijn.hpp"
#include "topology/kautz.hpp"
#include "topology/otis_swap.hpp"

namespace otis::routing {
namespace {

TEST(TableRouter, MatchesBfsOnKautz) {
  topology::Kautz kautz(3, 2);
  TableRouter router(kautz.graph());
  for (graph::Vertex u = 0; u < 12; ++u) {
    auto bfs = graph::bfs_distances(kautz.graph(), u);
    for (graph::Vertex v = 0; v < 12; ++v) {
      EXPECT_EQ(router.distance(u, v), bfs[static_cast<std::size_t>(v)]);
    }
  }
}

TEST(TableRouter, RoutesAreShortestWalks) {
  topology::DeBruijn db(2, 3);
  TableRouter router(db.graph());
  for (graph::Vertex u = 0; u < db.order(); ++u) {
    for (graph::Vertex v = 0; v < db.order(); ++v) {
      auto path = router.route(u, v);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      EXPECT_EQ(static_cast<std::int64_t>(path.size()) - 1,
                router.distance(u, v));
      EXPECT_TRUE(graph::is_walk(db.graph(), path) || path.size() == 1);
    }
  }
}

TEST(TableRouter, UnreachableIsSignalled) {
  graph::Digraph g = graph::Digraph::from_arcs(3, {{0, 1}});
  TableRouter router(g);
  EXPECT_EQ(router.distance(0, 2), -1);
  EXPECT_EQ(router.next_hop(0, 2), -1);
  EXPECT_TRUE(router.route(0, 2).empty());
}

TEST(TableRouter, AgreesWithArithmeticRouterOnImaseItoh) {
  topology::ImaseItoh ii(3, 17);
  TableRouter table(ii.graph());
  ImaseItohRouter arithmetic(ii);
  for (graph::Vertex u = 0; u < 17; ++u) {
    for (graph::Vertex v = 0; v < 17; ++v) {
      EXPECT_EQ(table.distance(u, v), arithmetic.distance(u, v));
    }
  }
}

TEST(GenericStackRouter, DeliversOnStackImaseItoh) {
  hypergraph::StackImaseItoh sii(3, 3, 10);  // non-Kautz order
  GenericStackRouter router(sii.stack());
  const auto& hg = sii.stack().hypergraph();
  for (hypergraph::Node src = 0; src < sii.processor_count(); src += 3) {
    for (hypergraph::Node dst = 0; dst < sii.processor_count(); dst += 2) {
      hypergraph::Node current = src;
      std::int64_t hops = 0;
      while (current != dst) {
        const auto coupler = router.next_coupler(current, dst);
        // The sender must be able to feed the chosen coupler.
        const auto& sources = hg.hyperarc(coupler).sources;
        ASSERT_NE(std::find(sources.begin(), sources.end(), current),
                  sources.end());
        current = router.relay_on(coupler, dst);
        ++hops;
        ASSERT_LE(hops, 10);
      }
      EXPECT_EQ(hops, router.distance(src, dst));
    }
  }
}

TEST(GenericStackRouter, DistanceCases) {
  hypergraph::StackImaseItoh sii(4, 2, 9);
  GenericStackRouter router(sii.stack());
  EXPECT_EQ(router.distance(5, 5), 0);
  // Same group, different copy: the loop, one hop.
  EXPECT_EQ(router.distance(sii.processor(2, 0), sii.processor(2, 3)), 1);
  // Distances bounded by group diameter bound + loop handling.
  for (hypergraph::Node p = 0; p < sii.processor_count(); p += 5) {
    for (hypergraph::Node q = 0; q < sii.processor_count(); q += 7) {
      EXPECT_LE(router.distance(p, q),
                static_cast<std::int64_t>(sii.diameter_bound()) + 1);
    }
  }
}

}  // namespace
}  // namespace otis::routing

namespace otis::topology {
namespace {

TEST(OtisSwap, CountsAndLabels) {
  graph::Digraph ring = graph::Digraph::from_arcs(
      4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {1, 0}, {2, 1}, {3, 2}, {0, 3}});
  OtisSwapNetwork net(ring);
  EXPECT_EQ(net.order(), 16);
  EXPECT_EQ(net.electronic_arc_count(), 4 * 8);
  EXPECT_EQ(net.optical_arc_count(), 12);
  EXPECT_EQ(net.graph().size(),
            net.electronic_arc_count() + net.optical_arc_count());
  for (graph::Vertex v = 0; v < net.order(); ++v) {
    auto [g, p] = net.label_of(v);
    EXPECT_EQ(net.node_of(g, p), v);
  }
}

TEST(OtisSwap, SwapArcsAreTheTranspose) {
  graph::Digraph factor = complete_digraph(3, Loops::kWithout);
  OtisSwapNetwork net(factor);
  for (graph::Vertex g = 0; g < 3; ++g) {
    for (graph::Vertex p = 0; p < 3; ++p) {
      if (g != p) {
        EXPECT_TRUE(net.graph().has_arc(net.node_of(g, p), net.node_of(p, g)));
      } else {
        // diagonal processors have no optical link
        EXPECT_FALSE(net.graph().has_arc(net.node_of(g, p), net.node_of(p,
                                                                        g)));
      }
    }
  }
}

TEST(OtisSwap, DiameterAtMostTwiceFactorPlusOne) {
  // Classic OTIS-network bound (ref [24]): D(OTIS-G) <= 2 D(G) + 1 for
  // strongly-connected symmetric factors.
  graph::Digraph factor = graph::Digraph::from_arcs(
      3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 0}, {0, 2}});
  OtisSwapNetwork net(factor);
  const std::int64_t factor_diameter = graph::diameter(factor);
  EXPECT_LE(graph::diameter(net.graph()), 2 * factor_diameter + 1 + 1)
      << "allowing +1 slack for directed factors";
}

TEST(OtisSwap, StronglyConnectedForConnectedSymmetricFactor) {
  graph::Digraph path = graph::Digraph::from_arcs(
      3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}});
  OtisSwapNetwork net(path);
  EXPECT_TRUE(graph::is_strongly_connected(net.graph()));
}

}  // namespace
}  // namespace otis::topology
