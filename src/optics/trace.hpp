#pragma once
/// \file trace.hpp
/// Light-path tracing through an optical netlist.
///
/// Starting at a transmitter, light crosses point-to-point links, is
/// redirected inside OTIS lens pairs, merged by multiplexers, fanned out
/// by beam-splitters and terminated by receivers. The tracer enumerates
/// every receiver a transmitter illuminates, together with the traversed
/// component chain and the accumulated insertion/splitting loss. Design
/// verification (designs/verify.hpp) is built entirely on this.

#include <cstdint>
#include <vector>

#include "optics/netlist.hpp"
#include "optics/power.hpp"

namespace otis::optics {

/// One terminal of a traced lightpath.
struct TraceEndpoint {
  ComponentId receiver = -1;   ///< the photodetector reached
  double loss_db = 0.0;        ///< total optical loss along the path
  std::int64_t couplers = 0;   ///< multiplexers traversed (== OPS couplers)
  std::vector<ComponentId> path;  ///< component chain, transmitter first
};

/// All receivers illuminated by `transmitter`, in deterministic order.
/// Loss is computed with `model` (use LossModel{} for the default).
/// Throws if the netlist contains a cycle reachable from the transmitter
/// (physical designs are feed-forward) or a dangling port on the path.
[[nodiscard]] std::vector<TraceEndpoint> trace_from_transmitter(
    const Netlist& netlist, ComponentId transmitter, const LossModel& model);

/// Worst-case (max) loss over every transmitter -> receiver path in the
/// netlist. Useful for power-budget feasibility of a whole design.
[[nodiscard]] double max_loss_db(const Netlist& netlist,
                                 const LossModel& model);

}  // namespace otis::optics
