#include "graph/line_digraph.hpp"

namespace otis::graph {

LineDigraph line_digraph(const Digraph& g) {
  LineDigraph result;
  result.arc_of = g.arcs();
  std::vector<Arc> line_arcs;
  // |A(L(G))| = sum over v of indeg(v) * outdeg(v); reserve exactly.
  std::int64_t total = 0;
  for (Vertex v = 0; v < g.order(); ++v) {
    total += g.in_degree(v) * g.out_degree(v);
  }
  line_arcs.reserve(static_cast<std::size_t>(total));
  for (ArcId a = 0; a < g.size(); ++a) {
    Vertex v = g.head(a);
    for (ArcId b = g.out_begin(v); b < g.out_end(v); ++b) {
      line_arcs.push_back(Arc{a, b});
    }
  }
  result.graph = Digraph::from_arcs(g.size(), line_arcs);
  return result;
}

Digraph iterated_line_digraph(const Digraph& g, unsigned k) {
  Digraph current = g;
  for (unsigned i = 0; i < k; ++i) {
    current = line_digraph(current).graph;
  }
  return current;
}

}  // namespace otis::graph
