#include "sim/checkpoint.hpp"

#include <array>
#include <exception>

#include "obs/telemetry.hpp"
#include "sim/ops_network.hpp"

namespace otis::sim {
namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'O', 'T', 'I', 'S',
                                               'C', 'K', 'P', '1'};

}  // namespace

void checkpoint_write_header(core::BlobWriter& out, const SimConfig& config,
                             std::int64_t nodes, std::int64_t couplers) {
  out.put_bytes(kMagic.data(), kMagic.size());
  out.put_u64(kCheckpointVersion);
  out.put_u8(static_cast<std::uint8_t>(config.engine));
  out.put_u8(static_cast<std::uint8_t>(config.arbitration));
  out.put_u8(config.drain ? 1 : 0);
  out.put_u8(resolve_latency_sketch(config.latency_mode, nodes) ? 1 : 0);
  out.put_u64(config.seed);
  out.put_i64(config.warmup_slots);
  out.put_i64(config.measure_slots);
  out.put_i64(config.queue_capacity);
  out.put_i64(config.wavelengths);
  out.put_i64(nodes);
  out.put_i64(couplers);
}

bool checkpoint_read_header(core::BlobReader& in, const SimConfig& config,
                            std::int64_t nodes, std::int64_t couplers) {
  for (std::uint8_t expected : kMagic) {
    if (in.get_u8() != expected) {
      return false;
    }
  }
  if (in.get_u64() != kCheckpointVersion) {
    return false;
  }
  if (in.get_u8() != static_cast<std::uint8_t>(config.engine)) {
    return false;
  }
  if (in.get_u8() != static_cast<std::uint8_t>(config.arbitration)) {
    return false;
  }
  if (in.get_u8() != (config.drain ? 1 : 0)) {
    return false;
  }
  if (in.get_u8() !=
      (resolve_latency_sketch(config.latency_mode, nodes) ? 1 : 0)) {
    return false;
  }
  if (in.get_u64() != config.seed) {
    return false;
  }
  if (in.get_i64() != config.warmup_slots) {
    return false;
  }
  if (in.get_i64() != config.measure_slots) {
    return false;
  }
  if (in.get_i64() != config.queue_capacity) {
    return false;
  }
  if (in.get_i64() != config.wavelengths) {
    return false;
  }
  if (in.get_i64() != nodes) {
    return false;
  }
  if (in.get_i64() != couplers) {
    return false;
  }
  return true;
}

bool checkpoint_load(const std::string& path, const SimConfig& config,
                     std::int64_t nodes, std::int64_t couplers,
                     std::vector<std::uint8_t>& bytes) {
  if (!core::read_file(path, bytes)) {
    return false;
  }
  try {
    core::BlobReader header(bytes);
    return checkpoint_read_header(header, config, nodes, couplers);
  } catch (const std::exception&) {
    return false;  // shorter than any valid header
  }
}

void checkpoint_store(const std::string& path, const core::BlobWriter& out) {
  core::write_file_atomic(path, out.bytes());
}

void checkpoint_put_metrics(core::BlobWriter& out, const RunMetrics& m) {
  out.put_i64(m.slots);
  out.put_i64(m.offered_packets);
  out.put_i64(m.delivered_packets);
  out.put_i64(m.coupler_transmissions);
  out.put_i64(m.collisions);
  out.put_i64(m.dropped_packets);
  out.put_i64(m.backlog);
  out.put_i64(m.makespan_slots);
  m.latency.serialize(out);
}

void checkpoint_get_metrics(core::BlobReader& in, RunMetrics& m) {
  m.slots = in.get_i64();
  m.offered_packets = in.get_i64();
  m.delivered_packets = in.get_i64();
  m.coupler_transmissions = in.get_i64();
  m.collisions = in.get_i64();
  m.dropped_packets = in.get_i64();
  m.backlog = in.get_i64();
  m.makespan_slots = in.get_i64();
  m.latency.deserialize(in);
}

void checkpoint_put_telemetry(core::BlobWriter& out, const obs::Telemetry* tel,
                              std::int64_t tel_last) {
  out.put_u8(tel != nullptr ? 1 : 0);
  if (tel == nullptr) {
    return;
  }
  out.put_i64(tel_last);
  out.put_u8(tel->header_written() ? 1 : 0);
  out.put_i64_vec(tel->sampler_prev());
}

std::int64_t checkpoint_get_telemetry(core::BlobReader& in,
                                      obs::Telemetry* tel) {
  const bool saved = in.get_u8() != 0;
  OTIS_REQUIRE(saved == (tel != nullptr),
               "checkpoint: telemetry attached to only one of the saving "
               "and resuming runs");
  if (!saved) {
    return 0;
  }
  const std::int64_t tel_last = in.get_i64();
  const bool header_written = in.get_u8() != 0;
  tel->restore_sampler(header_written, in.get_i64_vec());
  return tel_last;
}

}  // namespace otis::sim
