#pragma once
/// \file work_pool.hpp
/// A pool of worker threads with per-worker deques and work stealing.
///
/// Lives in core so every layer can fan out over it: the campaign
/// runner spreads grid cells across workers, and the routing compilers
/// split their per-source/per-group-pair loops over the same pool
/// (disjoint output ranges, so parallel compilation is bit-identical
/// to serial). Threads start once and persist across run() calls; each
/// run() scatters item indices into contiguous per-worker blocks,
/// workers drain their own block front-to-back and steal from the back
/// of victims' deques when empty.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace otis::core {

class WorkStealingPool {
 public:
  /// `threads` <= 0 means hardware concurrency.
  explicit WorkStealingPool(int threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Runs fn(i) for every i in [0, count); returns when all completed.
  /// fn must be thread-safe across distinct items. Exceptions thrown by
  /// fn are captured and the first one is rethrown after the batch.
  /// NOT reentrant: fn must never call run() on the same pool.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// As above with the executing worker's index [0, thread_count())
  /// passed as the second argument -- the stable per-thread identity
  /// (steals included) that e.g. telemetry span tracks key off.
  void run(std::size_t count,
           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::size_t> items;
  };

  void worker_main(std::size_t self);
  bool try_acquire(std::size_t self, std::size_t& item);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::size_t remaining_ = 0;  ///< items of the current batch not yet done
  std::size_t active_ = 0;     ///< workers currently inside the batch
  std::exception_ptr first_error_;
  bool shutdown_ = false;
};

}  // namespace otis::core
