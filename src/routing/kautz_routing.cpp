#include "routing/kautz_routing.hpp"

#include "core/error.hpp"

namespace otis::routing {

using topology::Word;

KautzRouter::KautzRouter(topology::Kautz kautz) : kautz_(std::move(kautz)) {}

int KautzRouter::overlap(const Word& x, const Word& y) {
  OTIS_REQUIRE(x.size() == y.size(), "KautzRouter::overlap: length mismatch");
  const int k = static_cast<int>(x.size());
  for (int l = k; l >= 1; --l) {
    bool match = true;
    for (int i = 0; i < l; ++i) {
      if (x[static_cast<std::size_t>(k - l + i)] !=
          y[static_cast<std::size_t>(i)]) {
        match = false;
        break;
      }
    }
    if (match) {
      return l;
    }
  }
  return 0;
}

int KautzRouter::distance(std::int64_t source, std::int64_t target) const {
  return kautz_.diameter() -
         overlap(kautz_.word_of(source), kautz_.word_of(target));
}

std::vector<Word> KautzRouter::route_words(const Word& source,
                                           const Word& target) const {
  OTIS_REQUIRE(kautz_.is_valid_word(source),
               "KautzRouter::route_words: invalid source word");
  OTIS_REQUIRE(kautz_.is_valid_word(target),
               "KautzRouter::route_words: invalid target word");
  const int k = kautz_.diameter();
  const int l = overlap(source, target);
  std::vector<Word> path{source};
  Word current = source;
  // Shift in the target's letters y_{l+1} .. y_k, one hop each. Validity
  // of every intermediate word follows from the overlap: the boundary
  // pair is (x_k = y_l, y_{l+1}) which differs since target is valid.
  for (int i = l; i < k; ++i) {
    current = topology::Kautz::shift(current,
                                     target[static_cast<std::size_t>(i)]);
    path.push_back(current);
  }
  OTIS_ASSERT(current == target, "KautzRouter: route did not reach target");
  return path;
}

std::vector<std::int64_t> KautzRouter::route(std::int64_t source,
                                             std::int64_t target) const {
  std::vector<std::int64_t> path;
  for (const Word& w : route_words(kautz_.word_of(source),
                                   kautz_.word_of(target))) {
    path.push_back(kautz_.vertex_of(w));
  }
  return path;
}

Word KautzRouter::next_hop_word(const Word& current, const Word& target) const {
  OTIS_REQUIRE(current != target, "KautzRouter::next_hop_word: already there");
  const int l = overlap(current, target);
  OTIS_ASSERT(l < kautz_.diameter(), "next_hop_word: full overlap but not equal");
  return topology::Kautz::shift(current, target[static_cast<std::size_t>(l)]);
}

std::int64_t KautzRouter::next_hop(std::int64_t current,
                                   std::int64_t target) const {
  return kautz_.vertex_of(
      next_hop_word(kautz_.word_of(current), kautz_.word_of(target)));
}

}  // namespace otis::routing
