#include "core/error.hpp"

namespace otis::core {

std::string format_error(const char* file, int line,
                         const std::string& message) {
  std::string text(file);
  text += ':';
  text += std::to_string(line);
  text += ": ";
  text += message;
  return text;
}

void throw_error(const char* file, int line, const std::string& message) {
  throw Error(format_error(file, line, message));
}

}  // namespace otis::core
