// Claim T5 (paper Sec. 2.5 / 2.7): label-induced routing on Kautz (and
// hence stack-Kautz) is shortest-path with length <= k, computable from
// node labels alone. Sweeps KG(d,k), compares every pair's label route
// against BFS, and prints the route-length distribution.

#include <iostream>
#include <vector>

#include "core/table.hpp"
#include "graph/algorithms.hpp"
#include "routing/imase_itoh_routing.hpp"
#include "routing/kautz_routing.hpp"
#include "topology/imase_itoh.hpp"
#include "topology/kautz.hpp"

int main() {
  std::cout << "[Claim T5] label routing = shortest path, length <= k\n\n";
  otis::core::Table table({"graph", "pairs", "optimal", "max len", "k",
                           "mean len", "length histogram 0..k"});
  bool ok = true;
  struct Params {
    int d;
    int k;
  };
  for (const Params& p :
       {Params{2, 2}, Params{2, 3}, Params{2, 4}, Params{3, 2}, Params{3, 3},
        Params{4, 2}, Params{5, 2}}) {
    otis::topology::Kautz kautz(p.d, p.k);
    otis::routing::KautzRouter router(kautz);
    std::vector<std::int64_t> histogram(static_cast<std::size_t>(p.k) + 1, 0);
    std::int64_t pairs = 0;
    std::int64_t optimal = 0;
    std::int64_t max_len = 0;
    double total = 0;
    for (std::int64_t u = 0; u < kautz.order(); ++u) {
      auto bfs = otis::graph::bfs_distances(kautz.graph(), u);
      for (std::int64_t v = 0; v < kautz.order(); ++v) {
        const int len = router.distance(u, v);
        ++pairs;
        optimal += len == bfs[static_cast<std::size_t>(v)] ? 1 : 0;
        max_len = std::max<std::int64_t>(max_len, len);
        total += len;
        if (len <= p.k) {
          ++histogram[static_cast<std::size_t>(len)];
        }
      }
    }
    std::string hist;
    for (std::int64_t h : histogram) {
      hist += (hist.empty() ? "" : "/") + std::to_string(h);
    }
    table.add("KG(" + std::to_string(p.d) + "," + std::to_string(p.k) + ")",
              pairs, optimal, max_len, p.k,
              total / static_cast<double>(pairs), hist);
    ok = ok && optimal == pairs && max_len <= p.k;
  }
  table.print(std::cout);

  // Cross-check: the arithmetic Imase-Itoh router agrees on a Kautz
  // order and works on non-Kautz orders too.
  otis::routing::ImaseItohRouter general(otis::topology::ImaseItoh(3, 20));
  otis::graph::DistanceStats stats =
      otis::graph::distance_stats(otis::topology::ImaseItoh(3, 20).graph());
  bool general_ok = true;
  for (std::int64_t u = 0; u < 20; ++u) {
    auto bfs = otis::graph::bfs_distances(
        otis::topology::ImaseItoh(3, 20).graph(), u);
    for (std::int64_t v = 0; v < 20; ++v) {
      general_ok = general_ok &&
                   general.distance(u, v) ==
                       static_cast<int>(bfs[static_cast<std::size_t>(v)]);
    }
  }
  std::cout << "\narithmetic routing on II(3,20) (diameter "
            << stats.diameter << "): optimal on all pairs: "
            << (general_ok ? "yes" : "NO") << "\n"
            << "label routing optimal everywhere: " << (ok ? "yes" : "NO")
            << "\n";
  return ok && general_ok ? 0 : 1;
}
