#pragma once
/// \file metrics.hpp
/// Measurement collection for the network simulator.

#include <cstdint>
#include <vector>

namespace otis::sim {

/// Cap on up-front LatencyStats reservations (8 MiB of samples). The
/// engines reserve min(delivery bound, cap): the bound is measure_slots
/// x nodes (or the workload's packet count), which over-states real
/// delivery counts by 1/load or more, so the cap keeps huge cells from
/// paying for memory they will never touch while still giving the
/// common case a reallocation-free hot loop.
inline constexpr std::int64_t kLatencyReserveCap = std::int64_t{1} << 20;

/// Online latency statistics with full-sample percentiles.
///
/// Memory is O(delivered packets). For the roadmap's 10^6-node cells
/// the full-sample vector stops being viable; the planned replacement
/// is a fixed-bucket histogram sketch (HDR-style log-spaced buckets, or
/// a t-digest) recorded in O(1) memory, with percentile() answered from
/// the sketch -- the merge() contract (order-independent fold) already
/// matches, so only this class changes, not the engines.
class LatencyStats {
 public:
  /// Inline: called once per delivered packet in every engine hot loop.
  void record(std::int64_t latency_slots) {
    samples_.push_back(latency_slots);
    sorted_ = false;
  }

  /// Pre-sizes the sample buffer so the hot loop's record() never
  /// reallocates mid-run; engines call this once with their delivery
  /// bound clamped to kLatencyReserveCap.
  void reserve(std::int64_t samples) {
    if (samples > 0) {
      samples_.reserve(static_cast<std::size_t>(samples));
    }
  }

  /// Appends all of `other`'s samples (used to fold per-shard stats).
  /// Every statistic below depends only on the sample multiset -- the
  /// mean is an exact integer sum and the percentiles sort -- so merged
  /// results are identical for any merge order.
  void merge(const LatencyStats& other);

  [[nodiscard]] std::int64_t count() const noexcept {
    return static_cast<std::int64_t>(samples_.size());
  }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::int64_t max() const;
  /// q in [0, 1]; nearest-rank percentile. 0 samples -> 0.
  [[nodiscard]] std::int64_t percentile(double q) const;

 private:
  mutable std::vector<std::int64_t> samples_;
  mutable bool sorted_ = true;
};

/// Aggregate counters of one simulation run.
struct RunMetrics {
  std::int64_t slots = 0;             ///< measured slots (after warmup)
  std::int64_t offered_packets = 0;   ///< generated during measurement
  std::int64_t delivered_packets = 0; ///< reached destination
  std::int64_t coupler_transmissions = 0;  ///< successful slot-coupler uses
  std::int64_t collisions = 0;        ///< slot-couplers lost to contention
  std::int64_t dropped_packets = 0;   ///< lost to finite queues (if any)
  std::int64_t backlog = 0;           ///< packets still queued at the end
  /// Closed-loop (workload-driven) runs only: slots from the start of
  /// the run to the last workload delivery, the simulated completion
  /// time of the collective/kernel/trace. 0 for open-loop runs.
  std::int64_t makespan_slots = 0;
  LatencyStats latency;

  /// Delivered packets per processor per slot.
  [[nodiscard]] double throughput_per_node(std::int64_t nodes) const;
  /// Fraction of coupler-slots carrying a successful transmission.
  [[nodiscard]] double coupler_utilization(std::int64_t couplers) const;
};

}  // namespace otis::sim
