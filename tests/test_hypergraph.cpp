// Tests for hypergraphs, stack-graphs and the paper's multi-OPS network
// models: POPS(t,g) (Figs. 4-5), stack-Kautz SK(s,d,k) (Fig. 7) and
// stack-Imase-Itoh.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/error.hpp"
#include "graph/algorithms.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_graph.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "topology/complete.hpp"
#include "topology/kautz.hpp"

namespace otis::hypergraph {
namespace {

TEST(DirectedHypergraph, OpsCouplerAsHyperarc) {
  // Fig. 3: a degree-4 OPS coupler is one hyperarc with 4 sources
  // (processors 0-3) and 4 targets (processors 4-7).
  Hyperarc coupler{{0, 1, 2, 3}, {4, 5, 6, 7}};
  DirectedHypergraph hg(8, {coupler});
  EXPECT_EQ(hg.hyperarc_count(), 1);
  for (Node v = 0; v < 4; ++v) {
    EXPECT_EQ(hg.out_degree(v), 1);
    EXPECT_EQ(hg.in_degree(v), 0);
  }
  for (Node v = 4; v < 8; ++v) {
    EXPECT_EQ(hg.out_degree(v), 0);
    EXPECT_EQ(hg.in_degree(v), 1);
  }
  EXPECT_EQ(hg.one_hop_targets(0), (std::vector<Node>{4, 5, 6, 7}));
}

TEST(DirectedHypergraph, RejectsOutOfRangeNodes) {
  EXPECT_THROW(DirectedHypergraph(2, {Hyperarc{{0}, {2}}}), core::Error);
}

TEST(DirectedHypergraph, BfsOverHyperarcs) {
  // Two couplers chained: {0,1} -> {2,3} -> {4,5}.
  DirectedHypergraph hg(6, {Hyperarc{{0, 1}, {2, 3}},
                            Hyperarc{{2, 3}, {4, 5}}});
  auto dist = hg.bfs_distances(0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[2], 1);
  EXPECT_EQ(dist[4], 2);
  EXPECT_EQ(dist[1], -1);  // 0's copy sibling is not reachable
}

TEST(DirectedHypergraph, EquivalentToIgnoresOrdering) {
  DirectedHypergraph a(4, {Hyperarc{{0, 1}, {2, 3}}, Hyperarc{{2}, {0}}});
  DirectedHypergraph b(4, {Hyperarc{{2}, {0}}, Hyperarc{{1, 0}, {3, 2}}});
  DirectedHypergraph c(4, {Hyperarc{{2}, {0}}, Hyperarc{{1, 0}, {3, 1}}});
  EXPECT_TRUE(a.equivalent_to(b));
  EXPECT_FALSE(a.equivalent_to(c));
}

TEST(StackGraph, Definition1Structure) {
  // sigma(s, G): s copies per vertex, one hyperarc per base arc with the
  // s copies of tail as sources and the s copies of head as targets.
  graph::Digraph base = graph::Digraph::from_arcs(3, {{0, 1}, {1, 2}});
  StackGraph sg(4, base);
  EXPECT_EQ(sg.node_count(), 12);
  EXPECT_EQ(sg.hypergraph().hyperarc_count(), 2);
  const Hyperarc& h0 = sg.hypergraph().hyperarc(0);
  EXPECT_EQ(h0.sources, (std::vector<Node>{0, 1, 2, 3}));
  EXPECT_EQ(h0.targets, (std::vector<Node>{4, 5, 6, 7}));
}

TEST(StackGraph, ProjectionAndCopyIndex) {
  graph::Digraph base = graph::Digraph::from_arcs(2, {{0, 1}});
  StackGraph sg(3, base);
  for (Node node = 0; node < sg.node_count(); ++node) {
    EXPECT_EQ(sg.node_of(sg.project(node), sg.copy_index(node)), node);
  }
  EXPECT_EQ(sg.project(4), 1);
  EXPECT_EQ(sg.copy_index(4), 1);
}

TEST(StackGraph, StackingFactorOneIsBaseGraph) {
  graph::Digraph base = graph::Digraph::from_arcs(3, {{0, 1}, {1, 2},
                                                      {2, 0}});
  StackGraph sg(1, base);
  EXPECT_EQ(sg.node_count(), 3);
  for (graph::ArcId a = 0; a < base.size(); ++a) {
    const Hyperarc& h = sg.hypergraph().hyperarc(sg.coupler_of_arc(a));
    EXPECT_EQ(h.sources.size(), 1u);
    EXPECT_EQ(h.targets.size(), 1u);
    EXPECT_EQ(h.sources[0], base.arc(a).tail);
    EXPECT_EQ(h.targets[0], base.arc(a).head);
  }
}

TEST(Pops, Fig4Structure) {
  // POPS(4,2): 8 processors, 2 groups of 4, 4 couplers of degree 4.
  Pops pops(4, 2);
  EXPECT_EQ(pops.processor_count(), 8);
  EXPECT_EQ(pops.coupler_count(), 4);
  EXPECT_EQ(pops.group_count(), 2);
  for (Node p = 0; p < 8; ++p) {
    EXPECT_EQ(pops.group_of(p), p / 4);
    EXPECT_EQ(pops.index_in_group(p), p % 4);
    // Every processor feeds g couplers and hears g couplers.
    EXPECT_EQ(pops.stack().hypergraph().out_degree(p), 2);
    EXPECT_EQ(pops.stack().hypergraph().in_degree(p), 2);
  }
}

TEST(Pops, CouplerLabelsRoundTrip) {
  Pops pops(3, 4);
  std::set<HyperarcId> seen;
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 4; ++j) {
      const HyperarcId h = pops.coupler(i, j);
      EXPECT_EQ(pops.coupler_label(h), (std::pair<std::int64_t,
                                                  std::int64_t>{i, j}));
      seen.insert(h);
    }
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), pops.coupler_count());
}

TEST(Pops, CouplerConnectsRightGroups) {
  Pops pops(4, 2);
  for (std::int64_t i = 0; i < 2; ++i) {
    for (std::int64_t j = 0; j < 2; ++j) {
      const Hyperarc& h =
          pops.stack().hypergraph().hyperarc(pops.coupler(i, j));
      for (Node src : h.sources) {
        EXPECT_EQ(pops.group_of(src), i);
      }
      for (Node dst : h.targets) {
        EXPECT_EQ(pops.group_of(dst), j);
      }
      EXPECT_EQ(h.sources.size(), 4u);
      EXPECT_EQ(h.targets.size(), 4u);
    }
  }
}

TEST(Pops, IsSingleHop) {
  // Fig. 5 consequence: the POPS hypergraph has diameter 1.
  Pops pops(4, 2);
  EXPECT_EQ(pops.stack().hypergraph().diameter(), 1);
  Pops bigger(5, 3);
  EXPECT_EQ(bigger.stack().hypergraph().diameter(), 1);
}

TEST(Pops, BaseIsCompleteWithLoops) {
  Pops pops(4, 2);
  EXPECT_TRUE(pops.stack().base().same_arcs(
      topology::complete_digraph(2, topology::Loops::kWith)));
}

class StackKautzSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(StackKautzSweep, CountsMatchFormulas) {
  const auto [s, d, k] = GetParam();
  StackKautz sk(s, d, k);
  const std::int64_t groups = core::kautz_order(d, k);
  EXPECT_EQ(sk.group_count(), groups);
  EXPECT_EQ(sk.processor_count(), s * groups);
  EXPECT_EQ(sk.coupler_count(), groups * (d + 1));
  EXPECT_EQ(sk.processor_degree(), d + 1);
  for (Node p = 0; p < sk.processor_count(); ++p) {
    EXPECT_EQ(sk.stack().hypergraph().out_degree(p), d + 1);
    EXPECT_EQ(sk.stack().hypergraph().in_degree(p), d + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StackKautzSweep,
                         ::testing::Values(std::tuple<int, int, int>{2, 2, 2},
                                           std::tuple<int, int, int>{6, 3, 2},
                                           std::tuple<int, int, int>{4, 2, 3},
                                           std::tuple<int, int, int>{3, 4, 2},
                                           std::tuple<int, int, int>{1, 3,
                                                                     2}));

TEST(StackKautz, PaperFig7Example) {
  // SK(6,3,2): 72 processors, 12 groups of 6, degree 4, diameter 2,
  // 48 couplers of degree 6.
  StackKautz sk(6, 3, 2);
  EXPECT_EQ(sk.processor_count(), 72);
  EXPECT_EQ(sk.group_count(), 12);
  EXPECT_EQ(sk.processor_degree(), 4);
  EXPECT_EQ(sk.coupler_count(), 48);
  EXPECT_EQ(sk.diameter(), 2);
  EXPECT_EQ(sk.stack().hypergraph().diameter(), 2);
  EXPECT_EQ(sk.stack().stacking_factor(), 6);
}

TEST(StackKautz, HypergraphDiameterEqualsK) {
  // The stack construction preserves the base diameter (loops make
  // same-group distance 1, which never exceeds k >= 1).
  StackKautz sk(2, 2, 2);
  EXPECT_EQ(sk.stack().hypergraph().diameter(), 2);
  StackKautz sk3(2, 2, 3);
  EXPECT_EQ(sk3.stack().hypergraph().diameter(), 3);
}

TEST(StackKautz, ArcCouplerMatchesImaseItohSuccessor) {
  StackKautz sk(3, 3, 2);
  topology::ImaseItoh ii(3, 12);
  for (graph::Vertex x = 0; x < sk.group_count(); ++x) {
    for (int alpha = 1; alpha <= 3; ++alpha) {
      const Hyperarc& h =
          sk.stack().hypergraph().hyperarc(sk.arc_coupler(x, alpha));
      const graph::Vertex head = ii.successor(x, alpha);
      for (Node src : h.sources) {
        EXPECT_EQ(sk.group_of(src), x);
      }
      for (Node dst : h.targets) {
        EXPECT_EQ(sk.group_of(dst), head);
      }
    }
  }
}

TEST(StackKautz, LoopCouplerStaysInGroup) {
  StackKautz sk(4, 2, 2);
  for (graph::Vertex x = 0; x < sk.group_count(); ++x) {
    const Hyperarc& h =
        sk.stack().hypergraph().hyperarc(sk.loop_coupler(x));
    for (Node v : h.sources) {
      EXPECT_EQ(sk.group_of(v), x);
    }
    for (Node v : h.targets) {
      EXPECT_EQ(sk.group_of(v), x);
    }
  }
}

TEST(StackKautz, CouplerBetweenRejectsNonAdjacent) {
  StackKautz sk(2, 3, 2);
  topology::ImaseItoh ii(3, 12);
  // Find a non-adjacent pair.
  graph::Vertex x = 0;
  graph::Vertex bad = -1;
  auto succ = ii.successors(x);
  for (graph::Vertex y = 0; y < 12; ++y) {
    if (y != x && std::find(succ.begin(), succ.end(), y) == succ.end()) {
      bad = y;
      break;
    }
  }
  ASSERT_GE(bad, 0);
  EXPECT_THROW((void)sk.coupler_between(x, bad), core::Error);
  EXPECT_EQ(sk.coupler_between(x, x), sk.loop_coupler(x));
}

TEST(StackImaseItoh, ExistsForEveryGroupCount) {
  // The whole point of the Sec. 2.7 extension: any n works.
  for (std::int64_t n = 5; n <= 20; ++n) {
    StackImaseItoh sii(3, 3, n);
    EXPECT_EQ(sii.group_count(), n);
    EXPECT_EQ(sii.processor_count(), 3 * n);
    EXPECT_EQ(sii.coupler_count(), n * 4);
  }
}

TEST(StackImaseItoh, MatchesStackKautzAtKautzOrders) {
  StackImaseItoh sii(4, 3, 12);
  StackKautz sk(4, 3, 2);
  EXPECT_TRUE(
      sii.stack().hypergraph().equivalent_to(sk.stack().hypergraph()));
}

TEST(StackImaseItoh, DiameterBoundHolds) {
  StackImaseItoh sii(2, 3, 20);
  const std::int64_t hyper_diameter = sii.stack().hypergraph().diameter();
  EXPECT_LE(hyper_diameter,
            static_cast<std::int64_t>(sii.diameter_bound()) + 1);
}

TEST(ImaseItohWithLoops, StructureMatches) {
  // Unlike Kautz graphs, II(d,n) can have *natural* loops (u with
  // (d+1)u + alpha = 0 mod n); the construction adds one more per
  // vertex. II(3,10) has natural loops at u = 2 and u = 7.
  graph::Digraph g = imase_itoh_with_loops(3, 10);
  EXPECT_EQ(g.order(), 10);
  const std::int64_t natural =
      topology::ImaseItoh(3, 10).graph().loop_count();
  EXPECT_EQ(natural, 2);
  EXPECT_EQ(g.loop_count(), 10 + natural);
  EXPECT_TRUE(g.is_regular(4));
}

}  // namespace
}  // namespace otis::hypergraph
