#pragma once
/// \file traffic.hpp
/// Traffic generators for the OPS network simulator: the standard
/// workloads used to evaluate passive-star lightwave networks
/// (uniform Bernoulli, hotspot, fixed permutation, saturation), per
/// refs [7, 9, 25] of the paper.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.hpp"

namespace otis::sim {

/// Destination request produced by a generator for one node in one slot.
struct TrafficDemand {
  bool has_packet = false;
  std::int64_t destination = -1;
};

/// One generated packet of the current slot: `source` wants to send to
/// `destination`. The compact form of a slot's demands -- at load rho
/// only ~rho*N of the N per-node demands carry a packet, so the engines
/// consume this list instead of re-scanning a mostly-idle demand array.
struct SenderDemand {
  std::int64_t source = -1;
  std::int64_t destination = -1;
};

/// Per-slot, per-node packet generation interface. Implementations must
/// be deterministic given the Rng stream handed to them.
class TrafficGenerator {
 public:
  virtual ~TrafficGenerator() = default;

  /// Demand of `node` in the current slot. `rng` is the run's generator.
  virtual TrafficDemand demand(std::int64_t node, core::Rng& rng) = 0;

  /// Batched generation: fills `out[v]` for v in [node_begin, node_end)
  /// drawing from `rng` in ascending node order -- by contract the
  /// EXACT draw sequence of calling demand() in that loop, which the
  /// default implementation does literally. The engines call this once
  /// per slot instead of once per node, so the built-in generators
  /// override it with a devirtualized inner loop; custom generators
  /// inherit the loop and stay bit-identical automatically.
  virtual void demand_batch(std::int64_t node_begin, std::int64_t node_end,
                            core::Rng& rng, TrafficDemand* out);

  /// Same, but node v draws from `rngs[v]` -- the per-node streams of
  /// the sharded and workload engines. The per-stream draw sequences
  /// are identical to per-node demand() calls.
  virtual void demand_batch_streams(std::int64_t node_begin,
                                    std::int64_t node_end, core::Rng* rngs,
                                    TrafficDemand* out);

  /// Compact batched generation: appends one entry to `out` for each
  /// node v in [node_begin, node_end) whose demand this slot carries a
  /// packet for a destination other than v, in ascending node order,
  /// and returns the entry count. `out` must have room for node_end -
  /// node_begin entries. Consumes `rng` in the identical sequence as
  /// demand_batch (by contract: the ascending demand() loop), so the
  /// engines -- which all consume this form on their generate phase --
  /// stay bit-identical whichever overload a generator implements; the
  /// self-destination filter here mirrors the one the engines applied
  /// to the dense array.
  virtual std::size_t demand_batch_senders(std::int64_t node_begin,
                                           std::int64_t node_end,
                                           core::Rng& rng, SenderDemand* out);

  /// Compact form of demand_batch_streams: node v draws from `rngs[v]`.
  virtual std::size_t demand_batch_senders_streams(std::int64_t node_begin,
                                                   std::int64_t node_end,
                                                   core::Rng* rngs,
                                                   SenderDemand* out);

  /// True for saturation-style generators that always have a packet
  /// ready (used to measure saturation throughput).
  [[nodiscard]] virtual bool is_saturating() const { return false; }

  /// Checkpoint hooks: a generator with cross-slot state (BurstyTraffic's
  /// per-node burst flags) exports it as integers so engine checkpoints
  /// can restore it mid-run; stateless generators keep these no-ops.
  virtual void checkpoint_state(std::vector<std::int64_t>& out) const {
    out.clear();
  }
  virtual void restore_state(const std::vector<std::int64_t>& state) {
    (void)state;
  }
};

/// Bernoulli(load) arrivals, destination uniform over the other nodes.
class UniformTraffic final : public TrafficGenerator {
 public:
  UniformTraffic(std::int64_t nodes, double load);
  TrafficDemand demand(std::int64_t node, core::Rng& rng) override;
  void demand_batch(std::int64_t node_begin, std::int64_t node_end,
                    core::Rng& rng, TrafficDemand* out) override;
  void demand_batch_streams(std::int64_t node_begin, std::int64_t node_end,
                            core::Rng* rngs, TrafficDemand* out) override;
  std::size_t demand_batch_senders(std::int64_t node_begin,
                                   std::int64_t node_end, core::Rng& rng,
                                   SenderDemand* out) override;
  std::size_t demand_batch_senders_streams(std::int64_t node_begin,
                                           std::int64_t node_end,
                                           core::Rng* rngs,
                                           SenderDemand* out) override;

 private:
  std::int64_t nodes_;
  double load_;
};

/// Bernoulli(load) arrivals; with probability `hot_fraction` the packet
/// goes to `hot_node`, otherwise uniform.
class HotspotTraffic final : public TrafficGenerator {
 public:
  HotspotTraffic(std::int64_t nodes, double load, std::int64_t hot_node,
                 double hot_fraction);
  TrafficDemand demand(std::int64_t node, core::Rng& rng) override;
  void demand_batch(std::int64_t node_begin, std::int64_t node_end,
                    core::Rng& rng, TrafficDemand* out) override;
  void demand_batch_streams(std::int64_t node_begin, std::int64_t node_end,
                            core::Rng* rngs, TrafficDemand* out) override;
  std::size_t demand_batch_senders(std::int64_t node_begin,
                                   std::int64_t node_end, core::Rng& rng,
                                   SenderDemand* out) override;
  std::size_t demand_batch_senders_streams(std::int64_t node_begin,
                                           std::int64_t node_end,
                                           core::Rng* rngs,
                                           SenderDemand* out) override;

 private:
  std::int64_t nodes_;
  double load_;
  std::int64_t hot_node_;
  double hot_fraction_;
};

/// Bernoulli(load) arrivals to a fixed random permutation partner
/// (classic adversarial-but-balanced pattern).
class PermutationTraffic final : public TrafficGenerator {
 public:
  /// The permutation is drawn once from `seed` (derangement-adjusted so
  /// no node targets itself when nodes > 1).
  PermutationTraffic(std::int64_t nodes, double load, std::uint64_t seed);
  TrafficDemand demand(std::int64_t node, core::Rng& rng) override;
  void demand_batch(std::int64_t node_begin, std::int64_t node_end,
                    core::Rng& rng, TrafficDemand* out) override;
  void demand_batch_streams(std::int64_t node_begin, std::int64_t node_end,
                            core::Rng* rngs, TrafficDemand* out) override;
  std::size_t demand_batch_senders(std::int64_t node_begin,
                                   std::int64_t node_end, core::Rng& rng,
                                   SenderDemand* out) override;
  std::size_t demand_batch_senders_streams(std::int64_t node_begin,
                                           std::int64_t node_end,
                                           core::Rng* rngs,
                                           SenderDemand* out) override;

  [[nodiscard]] const std::vector<std::int64_t>& permutation() const {
    return partner_;
  }

 private:
  double load_;
  std::vector<std::int64_t> partner_;
};

/// Two-state (on/off) Markov-modulated Bernoulli arrivals: bursty
/// traffic. While ON, packets arrive with probability `peak_load`; the
/// ON->OFF and OFF->ON transition probabilities set burst and idle
/// lengths. Destinations are uniform.
class BurstyTraffic final : public TrafficGenerator {
 public:
  /// mean burst length = 1/`exit_on`, mean idle = 1/`enter_on` (slots).
  BurstyTraffic(std::int64_t nodes, double peak_load, double enter_on,
                double exit_on);
  TrafficDemand demand(std::int64_t node, core::Rng& rng) override;
  void demand_batch(std::int64_t node_begin, std::int64_t node_end,
                    core::Rng& rng, TrafficDemand* out) override;
  void demand_batch_streams(std::int64_t node_begin, std::int64_t node_end,
                            core::Rng* rngs, TrafficDemand* out) override;
  std::size_t demand_batch_senders(std::int64_t node_begin,
                                   std::int64_t node_end, core::Rng& rng,
                                   SenderDemand* out) override;
  std::size_t demand_batch_senders_streams(std::int64_t node_begin,
                                           std::int64_t node_end,
                                           core::Rng* rngs,
                                           SenderDemand* out) override;

  /// Long-run average load: peak_load * P(on).
  [[nodiscard]] double mean_load() const;

  void checkpoint_state(std::vector<std::int64_t>& out) const override;
  void restore_state(const std::vector<std::int64_t>& state) override;

 private:
  std::int64_t nodes_;
  double peak_load_;
  double enter_on_;
  double exit_on_;
  std::vector<char> on_;  ///< per-node burst state
};

/// Every node always has a packet for a uniform random destination:
/// measures saturation throughput.
class SaturationTraffic final : public TrafficGenerator {
 public:
  explicit SaturationTraffic(std::int64_t nodes);
  TrafficDemand demand(std::int64_t node, core::Rng& rng) override;
  void demand_batch(std::int64_t node_begin, std::int64_t node_end,
                    core::Rng& rng, TrafficDemand* out) override;
  void demand_batch_streams(std::int64_t node_begin, std::int64_t node_end,
                            core::Rng* rngs, TrafficDemand* out) override;
  std::size_t demand_batch_senders(std::int64_t node_begin,
                                   std::int64_t node_end, core::Rng& rng,
                                   SenderDemand* out) override;
  std::size_t demand_batch_senders_streams(std::int64_t node_begin,
                                           std::int64_t node_end,
                                           core::Rng* rngs,
                                           SenderDemand* out) override;
  [[nodiscard]] bool is_saturating() const override { return true; }

 private:
  std::int64_t nodes_;
};

}  // namespace otis::sim
