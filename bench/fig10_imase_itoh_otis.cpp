// Fig. 10 of the paper: II(3,12) realized with OTIS(3,12), annotated with
// the KG(3,2) word labels of each node (Corollary 1). Regenerates the
// node <-> port assignment table and machine-checks Proposition 1 plus
// the Kautz identification.

#include <iostream>

#include "core/table.hpp"
#include "otis/imase_itoh_realization.hpp"
#include "topology/kautz.hpp"

int main() {
  std::cout << "[Fig. 10] II(3,12) on OTIS(3,12), labels in KG(3,2)\n\n";
  otis::otis::ImaseItohRealization real(3, 12);
  otis::topology::Kautz kautz(3, 2);

  otis::core::Table table({"node", "KG(3,2) word", "tx inputs (linear)",
                           "neighbors via OTIS"});
  for (std::int64_t u = 0; u < 12; ++u) {
    std::string inputs;
    std::string neighbors;
    for (int alpha = 1; alpha <= 3; ++alpha) {
      inputs += (inputs.empty() ? "" : ",") +
                std::to_string(real.input_of(u, alpha));
      const std::int64_t v = real.neighbor_via_otis(u, alpha);
      neighbors += (neighbors.empty() ? "" : " ") + std::to_string(v) + "(" +
                   otis::topology::Kautz::word_to_string(kautz.word_of(v)) +
                   ")";
    }
    table.add(u, otis::topology::Kautz::word_to_string(kautz.word_of(u)),
              inputs, neighbors);
  }
  table.print(std::cout);

  std::string details;
  const bool prop1 = real.verify(&details);
  const bool is_kautz = real.realized_digraph().same_arcs(kautz.graph());
  std::cout << "\nProposition 1 (OTIS(3,12) == II(3,12)): "
            << (prop1 ? "yes" : ("NO: " + details)) << "\n"
            << "Corollary 1 (realized graph == KG(3,2)): "
            << (is_kautz ? "yes" : "NO") << "\n";
  // The figure's leftmost column: node 0 = word 01, connected to
  // 11(10), 10(13->word?)... spot-check node 0's neighbor set {11,10,9}.
  const bool fig_arcs = real.neighbor_via_otis(0, 1) == 11 &&
                        real.neighbor_via_otis(0, 2) == 10 &&
                        real.neighbor_via_otis(0, 3) == 9;
  std::cout << "figure's node-0 neighborhood {11,10,9}: "
            << (fig_arcs ? "yes" : "NO") << "\n";
  return prop1 && is_kautz && fig_arcs ? 0 : 1;
}
