#include "core/error.hpp"
#include "designs/builders.hpp"
#include "otis/imase_itoh_realization.hpp"
#include "topology/imase_itoh.hpp"

namespace otis::designs {

using optics::ComponentId;
using optics::PortRef;

NetworkDesign imase_itoh_design(int degree, std::int64_t order) {
  OTIS_REQUIRE(degree >= 1, "imase_itoh_design: degree must be >= 1");
  OTIS_REQUIRE(order >= degree, "imase_itoh_design: order must be >= degree");
  const std::int64_t d = degree;
  const std::int64_t n = order;

  NetworkDesign design;
  design.name =
      "II(" + std::to_string(d) + "," + std::to_string(n) + ") via OTIS";
  design.processor_count = n;
  design.tx_of_processor.resize(static_cast<std::size_t>(n));
  design.rx_of_processor.resize(static_cast<std::size_t>(n));

  // One OTIS(d, n) carries all the arcs (Proposition 1).
  ComponentId otis = design.netlist.add_otis(d, n, design.name + "/otis");

  // Node u's transmitter alpha plugs into OTIS input d*u + alpha - 1.
  for (std::int64_t u = 0; u < n; ++u) {
    for (std::int64_t alpha = 1; alpha <= d; ++alpha) {
      ComponentId tx = design.netlist.add_transmitter(
          "node" + std::to_string(u) + "/tx" + std::to_string(alpha));
      design.tx_of_processor[static_cast<std::size_t>(u)].push_back(tx);
      design.netlist.connect(PortRef{tx, 0}, PortRef{otis, d * u + alpha - 1});
    }
  }
  // Node v's receivers are OTIS output group v (d ports).
  for (std::int64_t v = 0; v < n; ++v) {
    for (std::int64_t b = 0; b < d; ++b) {
      ComponentId rx = design.netlist.add_receiver(
          "node" + std::to_string(v) + "/rx" + std::to_string(b));
      design.rx_of_processor[static_cast<std::size_t>(v)].push_back(rx);
      design.netlist.connect(PortRef{otis, v * d + b}, PortRef{rx, 0});
    }
  }

  design.target_digraph = topology::ImaseItoh(degree, order).graph();
  design.finalize();
  return design;
}

}  // namespace otis::designs
