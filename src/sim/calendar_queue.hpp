#pragma once
/// \file calendar_queue.hpp
/// Calendar queue: the O(1)-amortized rewrite of the EventQueue's
/// pending-event set (Brown 1988), stored structure-of-arrays.
///
/// std::priority_queue pays O(log n) pointer-hopping comparisons per
/// operation; with ~10^6 in-flight propagation events that log factor
/// (and its cache misses) dominates an async simulation. A calendar
/// queue hashes events by time into an array of day buckets -- here the
/// bucket width starts at one slot (kTicksPerSlot ticks), the natural
/// unit of a slotted OPS network -- so scheduling is an O(1) append
/// into the right bucket and popping walks the calendar day by day.
///
/// Storage is a flat slab, not a vector of vectors: every bucket owns
/// kSlots fixed entry slots inside one contiguous array, with per-bucket
/// fill counts and dirty flags in byte-sized side arrays small enough to
/// live in L2. A push is then one write into the slab plus one hot
/// counter update -- a single cold cache line -- where a per-bucket
/// std::vector costs two dependent misses (header, then heap block) and
/// a malloc each time a day's vector first fills. The rare bucket that
/// overflows its kSlots spills into a single shared binary min-heap;
/// peek/pop compare the calendar's head with the heap's root, so
/// correctness never depends on the spill staying small (a pathological
/// all-same-day flood just degrades to the heap's O(log n)).
///
/// Bucket segments are *lazily sorted*: pushes append unsorted, and a
/// segment is sorted descending by (time, seq) once, when its day first
/// drains -- after which every pop is a decrement. The (time, seq)
/// order preserves the EventQueue's FIFO tie-break exactly, keeping
/// async runs bit-reproducible.
///
/// The calendar rescales itself (a variant of Brown's rule) against the
/// days the events actually span: when the pending count outgrows the
/// occupied span, it either doubles the year length (more buckets, when
/// the span already fills the year) or halves the bucket width (finer
/// days, when the span is shorter than the year), down to one-tick
/// days. Both track the *event horizon* -- the latest time ever pushed
/// -- because days beyond the horizon cannot thin any bucket. Each
/// rebuild at least doubles the effective day count, so total rebuild
/// work is a geometric series bounded by the event span; pop order is a
/// pure function of (time, seq), so rescaling never changes it. The
/// occupancy target (kTargetOccupancy per day) is set well under kSlots
/// so spills stay exponentially rare in steady state.
///
/// find_min() results are memoized: peek() caches the minimum bucket
/// and pop() keeps the cache while the next entry stays in the current
/// day, so the peek-then-pop cycle of the async engine costs one
/// calendar walk, not two.
///
/// The payload is a template parameter: the AsyncEngine stores plain
/// structs (no per-event std::function allocation), the benchmarks
/// store integers, and a std::function instantiation would behave like
/// the classic EventQueue.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "sim/event_queue.hpp"

namespace otis::sim {

template <typename Payload>
class CalendarQueue {
 public:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break at equal times
    Payload payload{};
  };

  /// `bucket_width` is the day length in SimTime units (default: one
  /// slot of ticks); both it and `initial_buckets` must be powers of
  /// two (bucket lookup is a shift and a mask, no division).
  explicit CalendarQueue(SimTime bucket_width = kTicksPerSlot,
                         std::size_t initial_buckets = 64)
      : slab_(initial_buckets * kSlots),
        counts_(initial_buckets, 0),
        dirty_(initial_buckets, 0) {
    OTIS_REQUIRE(bucket_width > 0 &&
                     (bucket_width & (bucket_width - 1)) == 0,
                 "CalendarQueue: bucket width must be a power of two");
    OTIS_REQUIRE(initial_buckets > 0 &&
                     (initial_buckets & (initial_buckets - 1)) == 0,
                 "CalendarQueue: bucket count must be a power of two");
    while ((SimTime{1} << width_shift_) != bucket_width) {
      ++width_shift_;
    }
  }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return count_; }
  /// Time of the most recently popped entry.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `payload` at absolute time `at` (>= now()).
  void push(SimTime at, Payload payload) {
    OTIS_REQUIRE(at >= now_, "CalendarQueue: cannot schedule in the past");
    if (at > horizon_) {
      horizon_ = at;
    }
    maybe_rescale();
    raw_push(at, next_seq_++, std::move(payload));
    ++count_;
  }

  /// Schedules `payload` at absolute time `at` with a caller-chosen
  /// sequence key instead of the internal counter. The sharded async
  /// engine derives `seq` from the global (slot, coupler, winner)
  /// transmission order, so entries pushed into *different* per-shard
  /// calendars pop in the same relative order the serial engine's
  /// single queue would produce. Keys must be unique per (time, seq)
  /// within one queue; next_seq_ is not advanced, so keyed and
  /// auto-sequenced pushes should not be mixed in one queue.
  void push_keyed(SimTime at, std::uint64_t seq, Payload payload) {
    OTIS_REQUIRE(at >= now_, "CalendarQueue: cannot schedule in the past");
    if (at > horizon_) {
      horizon_ = at;
    }
    maybe_rescale();
    raw_push(at, seq, std::move(payload));
    ++count_;
  }

  /// The earliest (time, seq) entry without removing it. The queue must
  /// be non-empty.
  [[nodiscard]] const Entry& peek() {
    OTIS_ASSERT(count_ > 0, "CalendarQueue: peek on empty queue");
    const Entry* top = slab_min();
    if (!overflow_.empty() &&
        (top == nullptr || earlier(overflow_.front(), *top))) {
      return overflow_.front();
    }
    return *top;
  }

  /// Removes and returns the earliest (time, seq) entry. The queue must
  /// be non-empty.
  Entry pop() {
    OTIS_ASSERT(count_ > 0, "CalendarQueue: pop on empty queue");
    const Entry* top = slab_min();
    if (!overflow_.empty() &&
        (top == nullptr || earlier(overflow_.front(), *top))) {
      // The spilled entry wins; the cached slab minimum stays valid.
      std::pop_heap(overflow_.begin(), overflow_.end(), later);
      Entry result = std::move(overflow_.back());
      overflow_.pop_back();
      --count_;
      now_ = result.time;
      return result;
    }
    const std::size_t b = static_cast<std::size_t>(cached_bucket_);
    Entry result = std::move(slab_[b * kSlots + counts_[b] - 1]);
    --counts_[b];
    --count_;
    now_ = result.time;
    // The bucket stays the slab minimum while its next entry is still
    // inside the just-popped day (every other bucket's entries lie in
    // later days); otherwise the next peek walks the calendar again.
    const std::size_t day = static_cast<std::size_t>(now_) >> width_shift_;
    if (counts_[b] == 0 ||
        slab_[b * kSlots + counts_[b] - 1].time >=
            static_cast<SimTime>((day + 1) << width_shift_)) {
      cached_bucket_ = -1;
    }
    return result;
  }

  /// Visits every pending entry in unspecified order (checkpoint
  /// serialization: pop order is a pure function of (time, seq), so
  /// re-pushing the visited entries with push_keyed reproduces the
  /// queue's behaviour exactly, whatever order they are visited in).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t b = 0; b < counts_.size(); ++b) {
      for (std::size_t i = 0; i < counts_[b]; ++i) {
        fn(slab_[b * kSlots + i]);
      }
    }
    for (const Entry& entry : overflow_) {
      fn(entry);
    }
  }

  /// Auto-sequence counter state, for checkpointing queues that use the
  /// plain push() path.
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }
  void set_next_seq(std::uint64_t seq) noexcept { next_seq_ = seq; }

 private:
  /// Fixed entry slots per bucket in the slab. The rescale rule keeps
  /// steady-state occupancy near kTargetOccupancy, so a Poisson day
  /// exceeds kSlots with vanishing probability.
  static constexpr std::size_t kSlots = 16;
  static constexpr std::size_t kTargetOccupancy = 8;
  /// Practical ceiling on the year length: the slab is
  /// kSlots * sizeof(Entry) bytes per day.
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 17;

  [[nodiscard]] static bool earlier(const Entry& a, const Entry& b) noexcept {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }
  /// std::push_heap comparator: a min-heap on (time, seq).
  static bool later(const Entry& a, const Entry& b) noexcept {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }

  [[nodiscard]] std::size_t bucket_of(SimTime at) const noexcept {
    return (static_cast<std::size_t>(at) >> width_shift_) &
           (counts_.size() - 1);
  }

  /// Sorts bucket `b`'s slab segment descending by (time, seq): the
  /// earliest entry ends at the segment's back.
  void sort_segment(std::size_t b) {
    Entry* begin = slab_.data() + b * kSlots;
    std::sort(begin, begin + counts_[b],
              [](const Entry& x, const Entry& y) { return later(x, y); });
    dirty_[b] = 0;
  }

  /// Places an entry without bumping count_ / seq (shared by push and
  /// rebuild): into bucket `b`'s slab segment, or the overflow heap
  /// when the segment is full.
  void raw_push(SimTime at, std::uint64_t seq, Payload payload) {
    const std::size_t b = bucket_of(at);
    if (counts_[b] == kSlots) {
      overflow_.push_back(Entry{at, seq, std::move(payload)});
      std::push_heap(overflow_.begin(), overflow_.end(), later);
      return;
    }
    // The cache survives a push that cannot displace the cached
    // minimum: same bucket (its minimum only improves, and the dirty
    // flag forces a re-sort) or a time at or after the segment's last
    // entry (which is >= the bucket minimum; seq breaks ties in the
    // cached entry's favour).
    if (cached_bucket_ >= 0) {
      const std::size_t c = static_cast<std::size_t>(cached_bucket_);
      if (b != c && at < slab_[c * kSlots + counts_[c] - 1].time) {
        cached_bucket_ = -1;
      }
    }
    slab_[b * kSlots + counts_[b]] = Entry{at, seq, std::move(payload)};
    ++counts_[b];
    dirty_[b] = 1;
  }

  /// The slab's earliest entry (null iff every pending entry spilled).
  /// Leaves cached_bucket_ on that entry's bucket, sorted.
  [[nodiscard]] const Entry* slab_min() {
    if (cached_bucket_ >= 0) {
      const std::size_t b = static_cast<std::size_t>(cached_bucket_);
      if (dirty_[b] != 0) {
        // A push landed in the cached bucket since the last walk; the
        // minimum is still here but may no longer sit at the back.
        sort_segment(b);
      }
      return &slab_[b * kSlots + counts_[b] - 1];
    }
    if (count_ == overflow_.size()) {
      return nullptr;
    }
    cached_bucket_ = find_min_bucket();
    const std::size_t b = static_cast<std::size_t>(cached_bucket_);
    return &slab_[b * kSlots + counts_[b] - 1];
  }

  /// Bucket whose segment back is the slab-wide minimum; requires a
  /// non-empty slab. Sorts the bucket it settles on (lazily, once per
  /// day in steady state).
  [[nodiscard]] std::int64_t find_min_bucket() {
    // Walk the calendar from today: a bucket's earliest entry belongs
    // to the current day iff its time falls before that day's end, in
    // which case it is the slab minimum (earlier days were empty and
    // other buckets' entries lie in later days). The walk reads only
    // the byte-sized count array, so empty days cost ~a cycle each.
    const std::size_t buckets = counts_.size();
    std::size_t day = static_cast<std::size_t>(now_) >> width_shift_;
    for (std::size_t step = 0; step < buckets; ++step, ++day) {
      const std::size_t b = day & (buckets - 1);
      if (counts_[b] == 0) {
        continue;
      }
      if (dirty_[b] != 0) {
        sort_segment(b);
      }
      if (slab_[b * kSlots + counts_[b] - 1].time <
          static_cast<SimTime>((day + 1) << width_shift_)) {
        return static_cast<std::int64_t>(b);
      }
    }
    // Sparse tail: every slab entry lives more than a year ahead. Find
    // the bucket holding the slab minimum directly.
    std::int64_t best = -1;
    for (std::size_t b = 0; b < buckets; ++b) {
      if (counts_[b] == 0) {
        continue;
      }
      if (dirty_[b] != 0) {
        sort_segment(b);
      }
      if (best < 0 ||
          earlier(slab_[b * kSlots + counts_[b] - 1],
                  slab_[static_cast<std::size_t>(best) * kSlots +
                        counts_[static_cast<std::size_t>(best)] - 1])) {
        best = static_cast<std::int64_t>(b);
      }
    }
    return best;
  }

  /// Brown's occupancy rule, against the days the events actually span
  /// (now .. horizon): once the pending count passes kTargetOccupancy
  /// events per *effective* day, grow the year if the span already
  /// fills it, else sharpen the days. Either step doubles the effective
  /// day count, so the occupancy check fails geometrically rarely; when
  /// neither step is possible (one-tick days spanning a full maximal
  /// year) the check degrades to this cheap early-out.
  void maybe_rescale() {
    const std::size_t span_days =
        (static_cast<std::size_t>(horizon_) >> width_shift_) -
        (static_cast<std::size_t>(now_) >> width_shift_) + 1;
    if (count_ < kTargetOccupancy * std::min(span_days, counts_.size())) {
      return;
    }
    if (span_days >= counts_.size()) {
      if (counts_.size() < kMaxBuckets) {
        rebuild(counts_.size() * 2, width_shift_);
      }
    } else if (width_shift_ > 0) {
      rebuild(counts_.size(), width_shift_ - 1);
    }
  }

  /// Redistributes every entry -- slab and spilled alike -- into a
  /// fresh slab with `new_size` buckets of width 2^new_shift. Spilled
  /// entries usually re-enter the (now roomier) slab.
  void rebuild(std::size_t new_size, int new_shift) {
    std::vector<Entry> old_slab = std::move(slab_);
    std::vector<std::uint8_t> old_counts = std::move(counts_);
    std::vector<Entry> old_overflow = std::move(overflow_);
    slab_.assign(new_size * kSlots, Entry{});
    counts_.assign(new_size, 0);
    dirty_.assign(new_size, 0);
    overflow_.clear();
    width_shift_ = new_shift;
    cached_bucket_ = -1;
    for (std::size_t b = 0; b < old_counts.size(); ++b) {
      for (std::size_t i = 0; i < old_counts[b]; ++i) {
        Entry& entry = old_slab[b * kSlots + i];
        raw_push(entry.time, entry.seq, std::move(entry.payload));
      }
    }
    for (Entry& entry : old_overflow) {
      raw_push(entry.time, entry.seq, std::move(entry.payload));
    }
  }

  int width_shift_ = 0;
  /// Bucket b's entries live in slab_[b * kSlots + i), i < counts_[b],
  /// unordered while dirty_[b], else sorted descending by (time, seq).
  std::vector<Entry> slab_;
  std::vector<std::uint8_t> counts_;
  std::vector<std::uint8_t> dirty_;
  /// Entries whose bucket segment was full: a binary min-heap on
  /// (time, seq), compared against the slab head on every peek/pop.
  std::vector<Entry> overflow_;
  std::size_t count_ = 0;
  SimTime now_ = 0;
  SimTime horizon_ = 0;  ///< latest time ever pushed
  std::uint64_t next_seq_ = 0;
  /// Bucket whose segment back is the slab-wide minimum, or -1. The
  /// segment may have gone dirty since caching; peek/pop re-sort it.
  std::int64_t cached_bucket_ = -1;
};

}  // namespace otis::sim
