// Trace record / replay driver (workload subsystem).
//
//   trace_tool record    --out FILE [--format binary|jsonl] [--slots N]
//                        [--load L] [--seed S]
//   trace_tool replay    --trace FILE [--engine phased|sharded|async]
//                        [--threads N] [--routes dense|compressed]
//   trace_tool roundtrip --out FILE [--slots N] [--load L] [--seed S]
//   trace_tool summary   --trace FILE
//
// record runs uniform traffic on SK(4,3,2) (phased engine) with a
// TraceRecorder attached and writes the canonical (slot, src, dst)
// trace. replay drives the trace back through any engine and prints a
// metrics digest. roundtrip is the CI check: record once, round-trip
// the trace through BOTH serializations, replay it on every engine x
// route table x thread count {1,2,3,5,8}, and fail unless every digest
// is bit-identical -- the workload determinism contract, end to end.
// summary prints the trace's shape without replaying it: slot span,
// packet count, and the per-source packet-count histogram -- a fast
// sanity check on recorded or hand-built traces before a long replay.
// JSONL loading (and hence replay/summary) tolerates typed metadata
// rows from the obs channels ({"type": ...} schema/sample/runtime
// lines) interleaved with entry rows, and ignores unknown extra fields
// on entries; the header's entry count still has to match the entry
// rows actually present.

#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <algorithm>

#include "core/args.hpp"
#include "core/error.hpp"
#include "core/table.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "sim/ops_network.hpp"
#include "sim/traffic.hpp"
#include "workload/trace.hpp"

namespace {

/// The fixed record/replay network: the paper's SK(4,3,2), 48
/// processors -- big enough for multi-hop relaying, small enough that a
/// roundtrip is a sub-second CI step.
struct Bench {
  otis::hypergraph::StackKautz network{4, 3, 2};
  std::shared_ptr<const otis::routing::CompiledRoutes> dense =
      std::make_shared<const otis::routing::CompiledRoutes>(
          otis::routing::compile_stack_kautz_routes(network));
  std::shared_ptr<const otis::routing::CompressedRoutes> compressed =
      std::make_shared<const otis::routing::CompressedRoutes>(
          otis::routing::compress_stack_kautz_routes(network));
};

otis::workload::Trace record_trace(Bench& bench, std::int64_t slots,
                                   double load, std::uint64_t seed) {
  auto recorder = std::make_shared<otis::workload::TraceRecorder>(
      bench.network.processor_count());
  otis::sim::SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = slots;
  config.seed = seed;
  config.recorder = recorder;
  otis::sim::OpsNetworkSim sim(
      bench.network.stack(), bench.dense,
      std::make_unique<otis::sim::UniformTraffic>(
          bench.network.processor_count(), load),
      config);
  sim.run();
  return recorder->trace();
}

std::string replay_digest(Bench& bench, const otis::workload::Trace& trace,
                          otis::sim::Engine engine, int threads,
                          bool compressed_routes) {
  otis::sim::SimConfig config;
  config.warmup_slots = 0;
  config.measure_slots = 1;  // ignored: workload runs go to completion
  config.engine = engine;
  config.threads = threads;
  config.workload = std::make_shared<otis::workload::TraceWorkload>(trace);
  auto traffic = std::make_unique<otis::sim::UniformTraffic>(
      bench.network.processor_count(), 0.0);
  otis::sim::RunMetrics metrics;
  if (compressed_routes) {
    otis::sim::OpsNetworkSim sim(bench.network.stack(), bench.compressed,
                                 std::move(traffic), config);
    metrics = sim.run();
  } else {
    otis::sim::OpsNetworkSim sim(bench.network.stack(), bench.dense,
                                 std::move(traffic), config);
    metrics = sim.run();
  }
  std::ostringstream digest;
  digest << "offered=" << metrics.offered_packets
         << " delivered=" << metrics.delivered_packets
         << " transmissions=" << metrics.coupler_transmissions
         << " collisions=" << metrics.collisions
         << " backlog=" << metrics.backlog << " slots=" << metrics.slots
         << " makespan=" << metrics.makespan_slots
         << " latency_n=" << metrics.latency.count()
         << " latency_mean=" << metrics.latency.mean()
         << " latency_max=" << metrics.latency.max()
         << " latency_p95=" << metrics.latency.percentile(0.95);
  return digest.str();
}

int roundtrip(Bench& bench, const std::string& out, std::int64_t slots,
              double load, std::uint64_t seed) {
  const otis::workload::Trace recorded =
      record_trace(bench, slots, load, seed);
  std::cout << "[trace] recorded " << recorded.entries.size()
            << " packets over " << slots << " slots (SK(4,3,2), load "
            << load << ", seed " << seed << ")\n";

  // Serialization round-trip: binary and JSONL must both reproduce the
  // trace exactly.
  recorded.save_binary(out);
  const otis::workload::Trace from_binary = otis::workload::Trace::load(out);
  const std::string jsonl_path = out + ".jsonl";
  recorded.save_jsonl(jsonl_path);
  const otis::workload::Trace from_jsonl =
      otis::workload::Trace::load(jsonl_path);
  if (!(from_binary == recorded) || !(from_jsonl == recorded)) {
    std::cerr << "[trace] FAIL: serialization round-trip mismatch\n";
    return 1;
  }
  std::cout << "[trace] binary + jsonl serialization round-trips exact\n";

  // Replay parity: every engine, route table and thread count must
  // produce the identical digest.
  std::string reference;
  bool ok = true;
  const auto check = [&](const char* label, const std::string& digest) {
    if (reference.empty()) {
      reference = digest;
      std::cout << "[trace] " << label << ": " << digest << "\n";
      return;
    }
    const bool same = digest == reference;
    ok = ok && same;
    std::cout << "[trace] " << label << ": "
              << (same ? "identical" : "MISMATCH: " + digest) << "\n";
  };
  for (const bool compressed : {false, true}) {
    const char* routes = compressed ? "compressed" : "dense";
    check(("phased/" + std::string(routes)).c_str(),
          replay_digest(bench, from_binary, otis::sim::Engine::kPhased, 1,
                        compressed));
    check(("async/" + std::string(routes)).c_str(),
          replay_digest(bench, from_binary, otis::sim::Engine::kAsync, 1,
                        compressed));
    for (const int threads : {1, 2, 3, 5, 8}) {
      check(("sharded-" + std::to_string(threads) + "/" + routes).c_str(),
            replay_digest(bench, from_binary, otis::sim::Engine::kSharded,
                          threads, compressed));
    }
  }
  std::cout << "[trace] record -> replay bit-parity across engines, route "
               "tables and thread counts: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}

int summarize(const otis::workload::Trace& trace) {
  std::int64_t first_slot = 0;
  std::int64_t last_slot = 0;
  if (!trace.entries.empty()) {
    // Entries are canonical (sorted by slot), so the span is the ends.
    first_slot = trace.entries.front().slot;
    last_slot = trace.entries.back().slot;
  }
  const std::int64_t span =
      trace.entries.empty() ? 0 : last_slot - first_slot + 1;
  std::cout << "[trace] nodes " << trace.nodes << ", packets "
            << trace.entries.size() << ", slots [" << first_slot << ", "
            << last_slot << "] (span " << span << ")";
  if (span > 0) {
    std::cout << ", "
              << static_cast<double>(trace.entries.size()) /
                     static_cast<double>(span)
              << " packets/slot";
  }
  std::cout << "\n\n";

  std::vector<std::int64_t> per_source(
      static_cast<std::size_t>(trace.nodes), 0);
  for (const otis::workload::TraceEntry& e : trace.entries) {
    ++per_source[static_cast<std::size_t>(e.source)];
  }
  const auto [min_it, max_it] =
      std::minmax_element(per_source.begin(), per_source.end());
  const std::int64_t max_count = per_source.empty() ? 0 : *max_it;

  // Histogram of sources by packet count: doubling buckets from the
  // busiest source down, so hot senders stand out at any trace scale.
  std::vector<std::int64_t> bounds = {0, 1};
  for (std::int64_t b = 2; b <= max_count; b *= 2) {
    bounds.push_back(b);
  }
  otis::core::Table histogram({"packets", "sources"});
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const std::int64_t lo = bounds[i];
    const std::int64_t hi =
        i + 1 < bounds.size() ? bounds[i + 1] - 1 : max_count;
    std::int64_t sources = 0;
    for (const std::int64_t count : per_source) {
      sources += count >= lo && count <= hi ? 1 : 0;
    }
    const std::string label = lo == hi
                                  ? std::to_string(lo)
                                  : std::to_string(lo) + "-" +
                                        std::to_string(hi);
    histogram.add(label, sources);
  }
  histogram.print(std::cout);
  std::cout << "\nper-source packets: min " << (per_source.empty() ? 0 : *min_it)
            << ", mean "
            << (trace.nodes > 0
                    ? static_cast<double>(trace.entries.size()) /
                          static_cast<double>(trace.nodes)
                    : 0.0)
            << ", max " << max_count << "\n";
  return 0;
}

void print_usage(std::ostream& os) {
  os << "usage: trace_tool record    --out FILE [--format binary|jsonl]\n"
     << "                            [--slots N] [--load L] [--seed S]\n"
     << "       trace_tool replay    --trace FILE [--engine E]\n"
     << "                            [--threads N] [--routes R]\n"
     << "       trace_tool roundtrip --out FILE [--slots N] [--load L]\n"
     << "                            [--seed S]\n"
     << "       trace_tool summary   --trace FILE\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const otis::core::Args args(argc, argv,
                                {"out", "trace", "format", "slots", "load",
                                 "seed", "engine", "threads", "routes",
                                 "help"});
    if (args.has("help") || args.positional().empty()) {
      print_usage(args.has("help") ? std::cout : std::cerr);
      return args.has("help") ? 0 : 2;
    }
    const std::string command = args.positional().front();
    const std::int64_t slots = args.get_int("slots", 200);
    const double load = args.get_double("load", 0.4);
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.get_int("seed", 7));
    Bench bench;

    if (command == "record") {
      const std::string out = args.get("out", "");
      OTIS_REQUIRE(!out.empty(), "trace_tool record: --out is required");
      const otis::workload::Trace trace =
          record_trace(bench, slots, load, seed);
      const std::string format = args.get("format", "binary");
      if (format == "jsonl") {
        trace.save_jsonl(out);
      } else {
        OTIS_REQUIRE(format == "binary",
                     "trace_tool record: --format must be binary|jsonl");
        trace.save_binary(out);
      }
      std::cout << "[trace] wrote " << trace.entries.size()
                << " packets to " << out << " (" << format << ")\n";
      return 0;
    }
    if (command == "replay") {
      const std::string path = args.get("trace", "");
      OTIS_REQUIRE(!path.empty(), "trace_tool replay: --trace is required");
      const std::string engine_name = args.get("engine", "phased");
      otis::sim::Engine engine = otis::sim::Engine::kPhased;
      if (engine_name == "sharded") {
        engine = otis::sim::Engine::kSharded;
      } else if (engine_name == "async") {
        engine = otis::sim::Engine::kAsync;
      } else {
        OTIS_REQUIRE(engine_name == "phased",
                     "trace_tool replay: --engine must be "
                     "phased|sharded|async");
      }
      const std::string routes = args.get("routes", "dense");
      OTIS_REQUIRE(routes == "dense" || routes == "compressed",
                   "trace_tool replay: --routes must be dense|compressed");
      const otis::workload::Trace trace = otis::workload::Trace::load(path);
      std::cout << replay_digest(bench, trace, engine,
                                 static_cast<int>(args.get_int("threads", 1)),
                                 routes == "compressed")
                << "\n";
      return 0;
    }
    if (command == "roundtrip") {
      const std::string out = args.get("out", "");
      OTIS_REQUIRE(!out.empty(), "trace_tool roundtrip: --out is required");
      return roundtrip(bench, out, slots, load, seed);
    }
    if (command == "summary") {
      const std::string path = args.get("trace", "");
      OTIS_REQUIRE(!path.empty(), "trace_tool summary: --trace is required");
      return summarize(otis::workload::Trace::load(path));
    }
    print_usage(std::cerr);
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "trace_tool: " << e.what() << "\n";
    return 1;
  }
}
