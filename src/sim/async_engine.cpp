#include "sim/async_engine.hpp"

#include <algorithm>
#include <utility>

#include "core/error.hpp"
#include "sim/arbitration.hpp"
#include "sim/calendar_queue.hpp"

namespace otis::sim {
namespace {

/// Same per-run stream as the serial engines: the zero-delay limit must
/// consume the identical RNG sequence.
constexpr std::uint64_t kRunStream = 0x0715;

/// Slot-valued latency of a timed delivery: the number of whole slots
/// the packet needed, rounding a partially-used slot up. In the
/// zero-delay limit this equals the phased engine's (now - created + 1).
std::int64_t latency_slots(SimTime delivered_tick, SimTime created_tick) {
  return (delivered_tick - created_tick + kTicksPerSlot - 1) / kTicksPerSlot;
}

}  // namespace

template <routing::RouteView Routes>
AsyncEngineT<Routes>::AsyncEngineT(const hypergraph::StackGraph& network,
                                   const Routes& routes,
                                   TrafficGenerator& traffic,
                                   const SimConfig& config,
                                   const TimingModel& timing)
    : network_(network),
      routes_(routes),
      traffic_(traffic),
      config_(config),
      timing_(timing) {
  const auto& hg = network_.hypergraph();
  nodes_ = hg.node_count();
  couplers_ = hg.hyperarc_count();
  OTIS_REQUIRE(timing_.coupler_count() == couplers_,
               "AsyncEngine: timing model sized for another network");
  voq_base_.resize(static_cast<std::size_t>(nodes_) + 1);
  voq_base_[0] = 0;
  for (hypergraph::Node v = 0; v < nodes_; ++v) {
    voq_base_[static_cast<std::size_t>(v) + 1] =
        voq_base_[static_cast<std::size_t>(v)] + hg.out_degree(v);
  }
  voq_.resize(static_cast<std::size_t>(voq_base_.back()));
  retune_.assign(voq_.size(), 0);
  token_.assign(static_cast<std::size_t>(couplers_), 0);
}

template <routing::RouteView Routes>
RunMetrics AsyncEngineT<Routes>::run(
    std::vector<std::int64_t>& coupler_success) {
  if (config_.workload != nullptr) {
    return run_workload(coupler_success);
  }
  const auto& hg = network_.hypergraph();
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);
  core::Rng rng = core::Rng::stream(config_.seed, kRunStream);
  RunMetrics metrics;
  metrics.slots = config_.measure_slots;

  const SimTime horizon = config_.warmup_slots + config_.measure_slots;
  const SimTime drain_bound = horizon + 1'000'000;
  const SimTime warmup_tick = ticks_from_slots(config_.warmup_slots);
  const SimTime guard = timing_.guard();
  std::int64_t inflight = 0;
  std::int64_t next_packet_id = 0;

  /// An in-flight transmission: coupler -> receivers, landing at the
  /// event's calendar time. `measuring` is the transmission slot's flag
  /// (the phased engine accounts deliveries in the slot that carried
  /// them, so the async engine must too).
  struct Arrival {
    Packet packet;
    hypergraph::HyperarcId coupler = 0;
    bool measuring = false;
  };
  CalendarQueue<Arrival> propagations;

  // Hoisted scratch, as in the phased engine.
  std::vector<std::size_t> contenders;
  std::vector<std::size_t> winners;
  std::vector<char> is_contender;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);

  /// Queues `packet` at `at`; `tick` is when it landed there (its
  /// transmitter is tuned `tuning` ticks later). Mirrors the phased
  /// engine's enqueue, including drop accounting.
  const auto enqueue = [&](Packet packet, hypergraph::Node at, SimTime tick,
                           bool measuring) {
    const hypergraph::HyperarcId next =
        routes_.next_coupler(at, packet.destination);
    const std::int32_t slot = routes_.next_slot(at, packet.destination);
    auto& queue = voq_[static_cast<std::size_t>(
        voq_base_[static_cast<std::size_t>(at)] + slot)];
    if (config_.queue_capacity > 0 &&
        static_cast<std::int64_t>(queue.size()) >= config_.queue_capacity) {
      if (measuring) {
        ++metrics.dropped_packets;
      }
      --inflight;
      return;
    }
    queue.push_back(TimedPacket{std::move(packet), tick + timing_.tuning(next)});
  };

  /// Receive step of one landed transmission.
  const auto receive = [&](Arrival&& arrival, SimTime tick) {
    const hypergraph::Node relay =
        routes_.relay(arrival.coupler, arrival.packet.destination);
    if (relay == arrival.packet.destination) {
      if (arrival.measuring) {
        ++metrics.delivered_packets;
        if (arrival.packet.created >= warmup_tick) {
          metrics.latency.record(
              latency_slots(tick, arrival.packet.created));
        }
      }
      --inflight;
    } else {
      enqueue(std::move(arrival.packet), relay, tick, arrival.measuring);
    }
  };

  for (SimTime now = 0;;) {
    const SimTime slot_tick = ticks_from_slots(now);
    const bool measuring = now >= config_.warmup_slots && now < horizon;

    // Receive every transmission that landed by this slot boundary --
    // the phased engine's phase 3 runs before the next slot's phase 1,
    // so arrivals at exactly the boundary precede this slot's work.
    while (!propagations.empty() && propagations.peek().time <= slot_tick) {
      auto event = propagations.pop();
      receive(std::move(event.payload), event.time);
    }

    // Generate (stops at the horizon; drain only afterwards).
    if (now < horizon) {
      for (hypergraph::Node v = 0; v < nodes_; ++v) {
        const TrafficDemand demand = traffic_.demand(v, rng);
        if (!demand.has_packet || demand.destination == v) {
          continue;
        }
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, v, demand.destination);
        }
        if (measuring) {
          ++metrics.offered_packets;
        }
        ++inflight;
        enqueue(Packet{next_packet_id++, v, demand.destination, slot_tick, 0},
                v, slot_tick, measuring);
      }
    }

    // Arbitrate: per-coupler winner selection over the flattened feeds,
    // restricted to head packets whose transmitter tuned in time.
    for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
      const hypergraph::CouplerFeed feed = hg.coupler_feed(h);
      const std::size_t feed_count = static_cast<std::size_t>(feed.count);
      if (is_contender.size() < feed_count) {
        is_contender.resize(feed_count, 0);
      }
      contenders.clear();
      for (std::size_t si = 0; si < feed_count; ++si) {
        const std::size_t qi = static_cast<std::size_t>(
            voq_base_[static_cast<std::size_t>(feed.source[si])] +
            feed.slot[si]);
        const auto& queue = voq_[qi];
        if (queue.empty()) {
          continue;
        }
        // Head eligible iff its own tuning finished AND the transmitter
        // re-tuned since the queue's previous transmission, both guard
        // ticks before the boundary.
        const SimTime gate = std::max(queue.front().ready, retune_[qi]);
        if (gate + guard <= slot_tick) {
          contenders.push_back(si);
          is_contender[si] = 1;
        }
      }
      if (contenders.empty()) {
        continue;
      }
      const bool collided = detail::pick_winners(
          config_.arbitration, capacity, feed_count, contenders, is_contender,
          token_[static_cast<std::size_t>(h)], rng, winners);
      for (std::size_t si : contenders) {
        is_contender[si] = 0;
      }
      if (collided && measuring) {
        ++metrics.collisions;
      }
      for (std::size_t si : winners) {
        const std::size_t qi = static_cast<std::size_t>(
            voq_base_[static_cast<std::size_t>(feed.source[si])] +
            feed.slot[si]);
        auto& queue = voq_[qi];
        Packet packet = std::move(queue.front().packet);
        queue.pop_front();
        // Transmitter dead time: busy through this slot, then re-tunes.
        retune_[qi] = slot_tick + kTicksPerSlot + timing_.tuning(h);
        ++packet.hops;
        if (measuring) {
          ++metrics.coupler_transmissions;
          ++coupler_success[static_cast<std::size_t>(h)];
        }
        // Propagate: the transmission occupies slot `now` and lands
        // prop(h) ticks after the next boundary.
        propagations.push(
            slot_tick + kTicksPerSlot + timing_.propagation(h),
            Arrival{std::move(packet), h, measuring});
      }
    }

    const bool more_traffic = now + 1 < horizon;
    const bool keep_draining = config_.drain && inflight > 0;
    if (!(more_traffic || keep_draining)) {
      break;
    }
    ++now;
    if (now > drain_bound) {
      break;
    }
  }

  // Transmissions of the final slot are still in flight; land them (the
  // phased engine's last phase 3 does the same work inside the slot).
  while (!propagations.empty()) {
    auto event = propagations.pop();
    receive(std::move(event.payload), event.time);
  }

  metrics.backlog = inflight;
  return metrics;
}

template <routing::RouteView Routes>
RunMetrics AsyncEngineT<Routes>::run_workload(
    std::vector<std::int64_t>& coupler_success) {
  const auto& hg = network_.hypergraph();
  coupler_success.assign(static_cast<std::size_t>(couplers_), 0);
  workload::Workload& load = *config_.workload;
  load.reset();

  // Workload RNG contract (shared with the phased engines): generation
  // from per-node streams, arbitration from per-coupler streams.
  std::vector<core::Rng> gen_rng = detail::node_streams(config_.seed, nodes_);
  std::vector<core::Rng> arb_rng =
      detail::coupler_streams(config_.seed, couplers_);

  RunMetrics metrics;
  const std::int64_t background_base = load.packet_count();
  // Shared with the phased engines; skew can only defer deliveries by
  // bounded sub-slot amounts, so no extra headroom needed.
  const SimTime bound = detail::workload_slot_bound(load);
  const SimTime guard = timing_.guard();
  std::int64_t inflight = 0;
  SimTime makespan_tick = 0;

  struct Arrival {
    Packet packet;
    hypergraph::HyperarcId coupler = 0;
  };
  CalendarQueue<Arrival> propagations;

  std::vector<std::size_t> contenders;
  std::vector<std::size_t> winners;
  std::vector<char> is_contender;
  std::vector<workload::WorkloadPacket> inject;
  const std::size_t capacity = static_cast<std::size_t>(config_.wavelengths);

  // queue_capacity is 0 in workload mode (validated): never drops.
  const auto enqueue = [&](Packet packet, hypergraph::Node at,
                           SimTime tick) {
    const hypergraph::HyperarcId next =
        routes_.next_coupler(at, packet.destination);
    const std::int32_t slot = routes_.next_slot(at, packet.destination);
    voq_[static_cast<std::size_t>(voq_base_[static_cast<std::size_t>(at)] +
                                  slot)]
        .push_back(TimedPacket{std::move(packet), tick + timing_.tuning(next)});
  };

  const auto receive = [&](Arrival&& arrival, SimTime tick) {
    const hypergraph::Node relay =
        routes_.relay(arrival.coupler, arrival.packet.destination);
    if (relay == arrival.packet.destination) {
      ++metrics.delivered_packets;
      metrics.latency.record(latency_slots(tick, arrival.packet.created));
      if (arrival.packet.id < background_base) {
        load.delivered(arrival.packet.id);
        makespan_tick = std::max(makespan_tick, tick);
      }
      --inflight;
    } else {
      enqueue(std::move(arrival.packet), relay, tick);
    }
  };

  SimTime now = 0;
  for (;;) {
    const SimTime slot_tick = ticks_from_slots(now);

    // Receive everything that landed by this boundary; all of a
    // boundary's deliveries reach the workload before the poll below
    // (order within the boundary is irrelevant by the poll contract).
    while (!propagations.empty() && propagations.peek().time <= slot_tick) {
      auto event = propagations.pop();
      receive(std::move(event.payload), event.time);
    }
    const bool load_done = load.done();
    if (load_done && inflight == 0) {
      break;
    }
    if (now > bound) {
      // The phased engines count the bound-hit boundary as a slot
      // (they break after ++now); do the same so slots/backlog agree
      // across engines even for runs the bound cuts off.
      ++now;
      break;
    }

    // Inject the packets that became eligible, then background traffic
    // (same per-node VOQ push order as the phased engines).
    if (!load_done) {
      inject.clear();
      load.poll(now, inject);
      for (const workload::WorkloadPacket& packet : inject) {
        ++metrics.offered_packets;
        ++inflight;
        enqueue(Packet{packet.id, packet.source, packet.destination,
                       slot_tick, 0},
                packet.source, slot_tick);
      }
      for (hypergraph::Node v = 0; v < nodes_; ++v) {
        const TrafficDemand demand =
            traffic_.demand(v, gen_rng[static_cast<std::size_t>(v)]);
        if (!demand.has_packet || demand.destination == v) {
          continue;
        }
        if (config_.recorder != nullptr) {
          config_.recorder->record(now, v, demand.destination);
        }
        ++metrics.offered_packets;
        ++inflight;
        enqueue(Packet{background_base + now * nodes_ + v, v,
                       demand.destination, slot_tick, 0},
                v, slot_tick);
      }
    }

    // Arbitrate over eligibility-gated heads, per-coupler streams.
    for (hypergraph::HyperarcId h = 0; h < couplers_; ++h) {
      const hypergraph::CouplerFeed feed = hg.coupler_feed(h);
      const std::size_t feed_count = static_cast<std::size_t>(feed.count);
      if (is_contender.size() < feed_count) {
        is_contender.resize(feed_count, 0);
      }
      contenders.clear();
      for (std::size_t si = 0; si < feed_count; ++si) {
        const std::size_t qi = static_cast<std::size_t>(
            voq_base_[static_cast<std::size_t>(feed.source[si])] +
            feed.slot[si]);
        const auto& queue = voq_[qi];
        if (queue.empty()) {
          continue;
        }
        const SimTime gate = std::max(queue.front().ready, retune_[qi]);
        if (gate + guard <= slot_tick) {
          contenders.push_back(si);
          is_contender[si] = 1;
        }
      }
      if (contenders.empty()) {
        continue;
      }
      const bool collided = detail::pick_winners(
          config_.arbitration, capacity, feed_count, contenders, is_contender,
          token_[static_cast<std::size_t>(h)],
          arb_rng[static_cast<std::size_t>(h)], winners);
      for (std::size_t si : contenders) {
        is_contender[si] = 0;
      }
      if (collided) {
        ++metrics.collisions;
      }
      for (std::size_t si : winners) {
        const std::size_t qi = static_cast<std::size_t>(
            voq_base_[static_cast<std::size_t>(feed.source[si])] +
            feed.slot[si]);
        auto& queue = voq_[qi];
        Packet packet = std::move(queue.front().packet);
        queue.pop_front();
        retune_[qi] = slot_tick + kTicksPerSlot + timing_.tuning(h);
        ++packet.hops;
        ++metrics.coupler_transmissions;
        ++coupler_success[static_cast<std::size_t>(h)];
        propagations.push(slot_tick + kTicksPerSlot + timing_.propagation(h),
                          Arrival{std::move(packet), h});
      }
    }

    ++now;
  }

  metrics.slots = now;
  metrics.makespan_slots =
      (makespan_tick + kTicksPerSlot - 1) / kTicksPerSlot;
  metrics.backlog = inflight;
  return metrics;
}

template class AsyncEngineT<routing::CompiledRoutes>;
template class AsyncEngineT<routing::CompressedRoutes>;

}  // namespace otis::sim
