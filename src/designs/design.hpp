#pragma once
/// \file design.hpp
/// A NetworkDesign = an optical netlist plus the bookkeeping that ties
/// its transmitters/receivers to processors and states what topology the
/// optics are supposed to realize. The builders in this module implement
/// the constructions of the paper's Sections 3 and 4; verify.hpp then
/// checks them by tracing light, so every figure of the paper becomes an
/// executable, machine-checked artifact.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "hypergraph/hypergraph.hpp"
#include "optics/netlist.hpp"

namespace otis::designs {

/// A complete optical design for a multiprocessor interconnect.
struct NetworkDesign {
  std::string name;
  optics::Netlist netlist;
  std::int64_t processor_count = 0;

  /// tx_of_processor[p][c] = transmitter component of processor p's
  /// transmit slot c (slots are the processor's out-couplers / out-arcs).
  std::vector<std::vector<optics::ComponentId>> tx_of_processor;

  /// rx_of_processor[p][q] = receiver component of processor p's receive
  /// slot q.
  std::vector<std::vector<optics::ComponentId>> rx_of_processor;

  /// Exactly one of these states the intended topology:
  /// a hypergraph for multi-OPS (coupler) designs, a digraph for
  /// point-to-point designs such as the Sec. 3.2 Imase-Itoh realization.
  std::optional<hypergraph::DirectedHypergraph> target_hypergraph;
  std::optional<graph::Digraph> target_digraph;

  /// Inverse of rx_of_processor: owner processor of each receiver
  /// component (built by finalize()).
  [[nodiscard]] std::int64_t processor_of_receiver(
      optics::ComponentId rx) const;

  /// Builds the receiver-owner index; called by every builder.
  void finalize();

 private:
  std::map<optics::ComponentId, std::int64_t> rx_owner_;
};

/// Component inventory of a design: the paper's "12 OTIS(6,4), 12
/// OTIS(4,6), 48 optical multiplexers, 48 beam-splitters and one
/// OTIS(3,12)" sentences, as data.
struct BillOfMaterials {
  std::int64_t transmitters = 0;
  std::int64_t receivers = 0;
  std::int64_t multiplexers = 0;
  std::int64_t beam_splitters = 0;
  std::int64_t fibers = 0;
  /// (G, T) -> number of OTIS(G, T) lens pairs.
  std::map<std::pair<std::int64_t, std::int64_t>, std::int64_t> otis_blocks;

  [[nodiscard]] std::int64_t total_otis_blocks() const;
  /// Total lenslets across all OTIS blocks: an OTIS(G, T) uses G*T
  /// transmitter-side lenslets plus T*G receiver-side ones.
  [[nodiscard]] std::int64_t total_lenslets() const;
  [[nodiscard]] std::string to_string() const;
};

/// Counts components of `netlist` by kind and OTIS shape.
[[nodiscard]] BillOfMaterials bill_of_materials(const optics::Netlist& n);

}  // namespace otis::designs
