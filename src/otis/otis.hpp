#pragma once
/// \file otis.hpp
/// The Optical Transpose Interconnection System OTIS(G, T)
/// (Marsden-Marchand-Harvey-Esener, Optics Letters 1993; paper Sec. 2.1).
///
/// OTIS(G, T) is a free-space optical system built from two planes of
/// lenslets that connects G*T transmitters, arranged as G groups of T,
/// to G*T receivers, arranged as T groups of G: the transmitter (i, j)
/// (0 <= i < G, 0 <= j < T) illuminates the receiver (T-1-j, G-1-i).
/// The reversal of both coordinates is the optical inversion through the
/// two lens planes (Fig. 1 of the paper).
///
/// This class models the architecture as the exact port permutation plus
/// the lenslet geometry needed for the physical-layer (loss) model. The
/// key theoretical fact -- OTIS(d, n) *is* the Imase-Itoh digraph
/// II(d, n) (paper Proposition 1) -- lives in imase_itoh_realization.hpp.

#include <cstdint>
#include <vector>

namespace otis::otis {

/// A transmitter-side port (group, offset-in-group).
struct InputPort {
  std::int64_t group = 0;   ///< 0 <= group < G
  std::int64_t offset = 0;  ///< 0 <= offset < T
  friend bool operator==(const InputPort&, const InputPort&) = default;
};

/// A receiver-side port (group, offset-in-group).
struct OutputPort {
  std::int64_t group = 0;   ///< 0 <= group < T
  std::int64_t offset = 0;  ///< 0 <= offset < G
  friend bool operator==(const OutputPort&, const OutputPort&) = default;
};

/// OTIS(G, T): the transpose permutation on G*T ports.
class Otis {
 public:
  /// Requires G >= 1 and T >= 1.
  Otis(std::int64_t groups, std::int64_t group_size);

  [[nodiscard]] std::int64_t input_groups() const noexcept { return g_; }
  [[nodiscard]] std::int64_t input_group_size() const noexcept { return t_; }
  [[nodiscard]] std::int64_t output_groups() const noexcept { return t_; }
  [[nodiscard]] std::int64_t output_group_size() const noexcept { return g_; }
  /// Total port count G*T on each side.
  [[nodiscard]] std::int64_t port_count() const noexcept { return g_ * t_; }

  /// The optical transpose: input (i, j) -> output (T-1-j, G-1-i).
  [[nodiscard]] OutputPort map(InputPort in) const;

  /// Inverse map: which input illuminates a given output.
  [[nodiscard]] InputPort inverse_map(OutputPort out) const;

  /// Linearized input index of (i, j): i*T + j (row-major by group).
  [[nodiscard]] std::int64_t input_index(InputPort in) const;
  [[nodiscard]] InputPort input_port(std::int64_t index) const;

  /// Linearized output index of (a, b): a*G + b.
  [[nodiscard]] std::int64_t output_index(OutputPort out) const;
  [[nodiscard]] OutputPort output_port(std::int64_t index) const;

  /// The permutation as a vector: perm[input_index] = output_index.
  [[nodiscard]] std::vector<std::int64_t> permutation() const;

  /// Number of ports with input_index == mapped output_index, i.e. fixed
  /// points of the permutation read as a map on linear indices.
  [[nodiscard]] std::int64_t fixed_point_count() const;

 private:
  std::int64_t g_;
  std::int64_t t_;
};

/// Composing OTIS(T, G) after OTIS(G, T) gives the identity on ports:
/// the transpose is an optical involution. Returns true when that holds
/// (it always does; exposed as a checkable property for tests/benches).
[[nodiscard]] bool composes_to_identity(const Otis& forward,
                                        const Otis& backward);

}  // namespace otis::otis
