#pragma once
/// \file ops_network.hpp
/// Slot-synchronous simulator of multi-OPS networks.
///
/// Model (matching the paper's hardware assumptions):
///  - time is slotted; in one slot a coupler carries at most one packet
///    (single-wavelength OPS, Sec. 2.2);
///  - a processor owns one statically-tuned transmitter per out-coupler
///    and one receiver per in-coupler, so it can send and receive on all
///    its couplers in the same slot (multi-hop network with fixed tuning,
///    Sec. 1);
///  - a transmission on a coupler is heard by all its targets; the
///    routing relay (or the destination) consumes it, everyone else
///    discards it;
///  - contention for a coupler is resolved by a pluggable arbitration
///    policy -- the "distributed control" knob of the companion paper
///    [11]: token round-robin, random winner, or oblivious (collision
///    destroys all packets in that coupler-slot; senders retry).
///
/// Four execution engines share this model:
///  - kEventQueue: the original per-slot-event loop on the generic
///    EventQueue; kept as the seed-faithful reference implementation
///    (tests-only fixture since the async layer landed);
///  - kPhased: a direct three-phase slot loop (generate / arbitrate /
///    receive) over a structure-of-arrays VOQ arena with per-coupler
///    occupancy bitmasks and CompiledRoutes tables. Bit-identical to
///    kEventQueue for every seed, several times faster;
///  - kSharded: the phased loop with couplers and nodes partitioned
///    across worker threads, phases separated by barriers, and RNG
///    drawn from per-node / per-coupler streams so the result is
///    bit-identical for EVERY thread count (though, by design, a
///    different -- equally valid -- universe than the serial engines);
///  - kAsync: the calendar-queue timed-event engine (async_engine.hpp)
///    honouring SimConfig::timing -- transmitter tuning latencies,
///    per-coupler propagation skew, slot guard bands in sub-slot ticks.
///    Bit-identical to kPhased when the timing model is slot-aligned
///    (every delay zero).
///
/// The simulator works for *any* stack-graph network: POPS, stack-Kautz
/// and stack-Imase-Itoh differ only in the StackGraph and the routing
/// handed in.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "hypergraph/stack_graph.hpp"
#include "obs/runtime_stats.hpp"
#include "obs/telemetry.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/timing_model.hpp"
#include "sim/traffic.hpp"
#include "workload/trace.hpp"
#include "workload/workload.hpp"

namespace otis::sim {

namespace detail {
/// RNG stream tags for the per-unit streams. The sharded engine always
/// draws generation randomness from per-node streams and arbitration
/// randomness from per-coupler streams (so work partitioning cannot
/// influence the outcome); in workload (closed-loop) mode EVERY engine
/// does, which is what makes workload-driven runs bit-identical across
/// engines as well as thread counts. The values keep the families
/// disjoint from each other and from the serial engines' 0x0715 run
/// stream.
inline constexpr std::uint64_t kNodeStreamBase = 0x4F50534E4F444500ULL;
inline constexpr std::uint64_t kCouplerStreamBase = 0x4F5053435E504C00ULL;

/// The per-node generation streams for one run. Every engine that
/// draws per-unit randomness MUST build its streams through these two
/// helpers -- a second hand-rolled copy that drifted would silently
/// break the cross-engine/thread-count parity guarantees.
inline std::vector<core::Rng> node_streams(std::uint64_t seed,
                                           std::int64_t nodes) {
  std::vector<core::Rng> streams;
  streams.reserve(static_cast<std::size_t>(nodes));
  for (std::int64_t v = 0; v < nodes; ++v) {
    streams.push_back(core::Rng::stream(
        seed, kNodeStreamBase + static_cast<std::uint64_t>(v)));
  }
  return streams;
}

/// The per-coupler arbitration streams for one run.
inline std::vector<core::Rng> coupler_streams(std::uint64_t seed,
                                              std::int64_t couplers) {
  std::vector<core::Rng> streams;
  streams.reserve(static_cast<std::size_t>(couplers));
  for (std::int64_t h = 0; h < couplers; ++h) {
    streams.push_back(core::Rng::stream(
        seed, kCouplerStreamBase + static_cast<std::uint64_t>(h)));
  }
  return streams;
}

/// Slot bound on closed-loop runs, shared by every engine (the engines
/// must cut a stuck run off at the SAME slot or their reported
/// slots/backlog would diverge): a workload that has not completed and
/// drained by then (dependency livelock under aloha, or a trace whose
/// generation slots run away) ends the run with a backlog instead of
/// spinning forever.
inline SimTime workload_slot_bound(const workload::Workload& load) {
  return 1'000'000 + 64 * load.packet_count();
}

/// Refreshes the engine-standard counter/gauge probes from a metrics
/// snapshot (occupancy and pending_events are engine-specific; see
/// detail::observe_occupancy in occupancy.hpp). Shared by the phased
/// and async engines so probe values always mean the same thing.
inline void fill_metric_probes(obs::Telemetry& tel, const RunMetrics& m,
                               std::int64_t backlog) {
  obs::ProbeRegistry& reg = tel.probes();
  const obs::EngineProbes& ids = tel.engine_probes();
  reg.set(ids.offered, m.offered_packets);
  reg.set(ids.delivered, m.delivered_packets);
  reg.set(ids.transmissions, m.coupler_transmissions);
  reg.set(ids.collisions, m.collisions);
  reg.set(ids.dropped, m.dropped_packets);
  reg.set(ids.backlog, backlog);
}
}  // namespace detail

/// Coupler-contention resolution policies.
enum class Arbitration {
  kTokenRoundRobin,  ///< rotating priority per coupler: fair, collision-free
  kRandomWinner,     ///< uniformly random contender wins, others wait
  kSlottedAloha,     ///< each contender transmits w.p. 1/2; >1 collides
};

[[nodiscard]] const char* arbitration_name(Arbitration policy);

/// Execution engines (see file comment).
enum class Engine {
  kEventQueue,    ///< seed-faithful event-driven loop (tests-only fixture)
  kPhased,        ///< direct three-phase slot loop; == kEventQueue bit-for-bit
  kSharded,       ///< phased loop over N worker threads; thread-count invariant
  kAsync,         ///< calendar-queue timed events; == kPhased when slot-aligned
  kAsyncSharded,  ///< conservative-PDES async over N workers; thread-count
                  ///< invariant, == serial kAsync bit-for-bit in workload mode
};

[[nodiscard]] const char* engine_name(Engine engine);

/// Which routing-table representation the phased engines run on. Both
/// answer every route query identically (CompressedRoutes verifies that
/// at compile time), so the choice never changes results -- only memory:
/// dense is O(N^2 + H*N), compressed is O(G^2 + H).
enum class RouteTable {
  kDense,       ///< dense CompiledRoutes tables
  kCompressed,  ///< group-factored CompressedRoutes tables
  kAuto,        ///< compressed at/above kAutoRouteTableNodes, else dense
};

[[nodiscard]] const char* route_table_name(RouteTable table);

/// Node count at which RouteTable::kAuto flips from dense to compressed
/// tables. Below it the dense table is at most ~32 MiB and its
/// branch-free relay lookup is marginally cheaper; above it the O(N^2)
/// footprint starts to dominate the simulation's memory.
inline constexpr std::int64_t kAutoRouteTableNodes = 2048;

/// kAuto resolved against a concrete node count (kDense/kCompressed pass
/// through).
[[nodiscard]] constexpr RouteTable resolve_route_table(
    RouteTable table, std::int64_t nodes) noexcept {
  if (table == RouteTable::kAuto) {
    return nodes >= kAutoRouteTableNodes ? RouteTable::kCompressed
                                         : RouteTable::kDense;
  }
  return table;
}

/// How per-packet latency samples are stored (see LatencyStats). Both
/// modes report identical count/sum/mean/min/max; percentiles from the
/// sketch carry a bounded relative error (<= LatencyStats::
/// kSketchRelativeError) instead of being exact.
enum class LatencyMode {
  kFull,    ///< every sample retained; exact percentiles; O(delivered) memory
  kSketch,  ///< log-spaced bucket sketch; O(1) memory per cell
  kAuto,    ///< sketch at/above kAutoLatencySketchNodes nodes, else full
};

[[nodiscard]] const char* latency_mode_name(LatencyMode mode);

/// Node count at which LatencyMode::kAuto flips from full samples to the
/// sketch. Below it a measured window's samples are a few MB at most and
/// exact percentiles are worth keeping (and existing outputs stay
/// byte-identical); above it sample storage scales with delivered
/// packets -- hundreds of MB per cell at N ~ 10^5 -- while the sketch
/// stays at a fixed ~15 KiB.
inline constexpr std::int64_t kAutoLatencySketchNodes = 32768;

/// True when `mode` resolved against a concrete node count selects the
/// sketch representation (mirrors resolve_route_table).
[[nodiscard]] constexpr bool resolve_latency_sketch(
    LatencyMode mode, std::int64_t nodes) noexcept {
  if (mode == LatencyMode::kAuto) {
    return nodes >= kAutoLatencySketchNodes;
  }
  return mode == LatencyMode::kSketch;
}

/// Wall-time attribution of the slot loop's three phases, filled by the
/// serial phased engine when SimConfig::phase_breakdown points at one
/// (micro_benchmarks --phase-breakdown). Other engines ignore it -- the
/// serial loop is the one whose speedup the acceptance bar measures.
struct PhaseBreakdown {
  std::int64_t slots = 0;  ///< slot iterations attributed below
  double generate_seconds = 0.0;
  double arbitrate_seconds = 0.0;
  double receive_seconds = 0.0;
};

/// A packet in flight.
struct Packet {
  std::int64_t id = 0;
  hypergraph::Node source = 0;
  hypergraph::Node destination = 0;
  SimTime created = 0;
  int hops = 0;
};

/// Routing callbacks: which coupler a node uses for a destination, and
/// which member of the coupler's target set relays the packet onward.
/// The phased engines bake these into CompiledRoutes once at
/// construction; only the event-queue engine calls them per packet.
struct RoutingHooks {
  /// next_coupler(current, destination) -> coupler id.
  std::function<hypergraph::HyperarcId(hypergraph::Node, hypergraph::Node)>
      next_coupler;
  /// relay_on(coupler, destination) -> the node that picks the packet up
  /// off that coupler (must be one of the coupler's targets).
  std::function<hypergraph::Node(hypergraph::HyperarcId, hypergraph::Node)>
      relay_on;
};

/// Simulator configuration.
struct SimConfig {
  Arbitration arbitration = Arbitration::kTokenRoundRobin;
  std::int64_t warmup_slots = 200;     ///< excluded from metrics; >= 0
  std::int64_t measure_slots = 2000;   ///< measured window; > 0
  std::int64_t queue_capacity = 0;     ///< 0 = unbounded VOQs; >= 0
  std::uint64_t seed = 1;
  bool drain = false;  ///< keep running (no new traffic) until empty
  /// Wavelengths per coupler (WDM extension; the paper's couplers are
  /// single-wavelength, its "further research" direction): up to this
  /// many senders succeed per coupler-slot. Must be >= 1.
  std::int64_t wavelengths = 1;
  /// Execution engine. kPhased is the default: same results as the
  /// legacy event queue, several times faster.
  Engine engine = Engine::kPhased;
  /// Worker threads for kSharded and kAsyncSharded (<= 0 means hardware
  /// concurrency). Ignored by the serial engines. Results never depend
  /// on this value.
  int threads = 1;
  /// Routing-table representation for simulators constructed from
  /// RoutingHooks (pre-compiled tables pick their own representation).
  /// Results never depend on this value; see RouteTable. kAuto falls
  /// back to dense tables when the hooks are not group-factored, so it
  /// accepts every router kDense does; only an explicit kCompressed
  /// requires factoredness (and throws otherwise).
  RouteTable route_table = RouteTable::kAuto;
  /// Latency-sample representation (LatencyStats full samples vs the
  /// log-bucket sketch). kAuto flips to the sketch at
  /// kAutoLatencySketchNodes so small runs keep exact percentiles and
  /// byte-identical outputs while N ~ 10^5+ cells stop scaling memory
  /// with delivered-packet count. Never changes which packets are
  /// simulated -- only how their latencies are aggregated.
  LatencyMode latency_mode = LatencyMode::kAuto;
  /// Intra-run checkpointing (sim/checkpoint.hpp): when
  /// checkpoint_every_slots > 0 the engine serializes its full state to
  /// checkpoint_path every that-many slots (atomic tmp+rename), and with
  /// checkpoint_resume set it restores from an existing compatible blob
  /// before running -- the resumed run is bit-identical to an
  /// uninterrupted one. Open-loop runs on the phased/sharded/async/
  /// async-sharded engines only (no workload, no trace sink).
  std::int64_t checkpoint_every_slots = 0;
  std::string checkpoint_path;
  bool checkpoint_resume = false;
  /// Test/drill hook: when >= 0, the run stops right after writing the
  /// first checkpoint at a boundary slot >= this value (simulating an
  /// interruption); the returned metrics are the partial window and the
  /// blob on disk is the handoff to a checkpoint_resume run.
  std::int64_t checkpoint_stop_at = -1;
  /// Sub-slot timing (tuning latencies, propagation skew, guard bands;
  /// timing_model.hpp). Non-slot-aligned configs require Engine::kAsync
  /// or Engine::kAsyncSharded -- the slotted engines cannot honour them
  /// and refuse rather than silently ignoring the skew.
  TimingConfig timing;
  /// Closed-loop workload (workload/workload.hpp). When set the run is
  /// driven to completion instead of a fixed measure window:
  /// warmup_slots/measure_slots are ignored, every slot is measured,
  /// the engine injects the workload's packets as their dependencies
  /// deliver, and RunMetrics::makespan_slots reports the completion
  /// time. The traffic generator keeps running as *background* load
  /// alongside the workload until it completes (hand in load 0 for an
  /// uncontended run). Workload runs draw generation randomness from
  /// per-node streams and arbitration randomness from per-coupler
  /// streams on every engine, so the result is bit-identical across
  /// phased/sharded/async engines, route tables and thread counts.
  /// Requires unbounded VOQs (queue_capacity 0: a dropped dependency
  /// would stall its dependents forever) and a non-event-queue engine.
  std::shared_ptr<workload::Workload> workload;
  /// Optional generation capture: every open-loop packet the engines
  /// generate is recorded as a (slot, source, destination) trace entry
  /// for bit-identical replay (workload/trace.hpp). Supported by the
  /// phased, sharded and async engines (not the tests-only event-queue
  /// fixture).
  std::shared_ptr<workload::TraceRecorder> recorder;
  /// Optional per-phase timing sink (must outlive the run). Honoured by
  /// serial Engine::kPhased runs only; see PhaseBreakdown.
  PhaseBreakdown* phase_breakdown = nullptr;
  /// Optional telemetry session (obs/telemetry.hpp): timeseries probe
  /// sampling every sample_period slots plus warmup/measure/drain spans
  /// in the Chrome trace. Null (the default) costs the engines one
  /// pointer test per slot; sampling reads engine state only (no RNG,
  /// no reordering), so attaching it never changes RunMetrics, and the
  /// sharded engine's per-shard probe frames merge order-independently
  /// at the slot barrier, keeping probe values and timeseries bytes
  /// identical across thread counts. Supported by the phased, sharded
  /// and async engines (not the tests-only event-queue fixture).
  std::shared_ptr<obs::Telemetry> telemetry;
  /// Optional runtime-introspection session (obs/runtime_stats.hpp):
  /// the NONdeterministic channel -- per-shard barrier-wait/advance
  /// time, conservative-window widths, mailbox pressure and calendar
  /// depth, all wall-clock derived. Collected by the sharded phased
  /// and async-sharded worker loops only; the serial engines have no
  /// barriers to attribute. Null or inactive costs one pointer+flag
  /// test per run (checked once before the worker loop, never per
  /// slot), and collection never touches simulation state: RunMetrics,
  /// probe values and timeseries bytes are unchanged whether or not a
  /// session is attached -- the strict separation that keeps the
  /// deterministic channel's thread-count-invariance intact.
  std::shared_ptr<obs::RuntimeStats> runtime_stats;
};

/// The slot-synchronous multi-OPS network simulator.
class OpsNetworkSim {
 public:
  /// `network` must outlive the simulator. Traffic generator is owned.
  /// The hooks are baked into a routing table at construction unless the
  /// engine is kEventQueue; `config.route_table` picks dense
  /// CompiledRoutes or group-factored CompressedRoutes (kAuto decides by
  /// node count).
  OpsNetworkSim(const hypergraph::StackGraph& network, RoutingHooks routing,
                std::unique_ptr<TrafficGenerator> traffic, SimConfig config);

  /// Same, with pre-compiled routes (share one table across many trials
  /// of a sweep instead of re-baking per simulator).
  OpsNetworkSim(const hypergraph::StackGraph& network,
                std::shared_ptr<const routing::CompiledRoutes> routes,
                std::unique_ptr<TrafficGenerator> traffic, SimConfig config);

  /// Convenience: compiled routes by value.
  OpsNetworkSim(const hypergraph::StackGraph& network,
                routing::CompiledRoutes routes,
                std::unique_ptr<TrafficGenerator> traffic, SimConfig config);

  /// Same, with a pre-compiled group-factored table (the O(G^2 + H)
  /// representation; share it across trials exactly like dense tables).
  OpsNetworkSim(const hypergraph::StackGraph& network,
                std::shared_ptr<const routing::CompressedRoutes> routes,
                std::unique_ptr<TrafficGenerator> traffic, SimConfig config);

  /// Convenience: compressed routes by value.
  OpsNetworkSim(const hypergraph::StackGraph& network,
                routing::CompressedRoutes routes,
                std::unique_ptr<TrafficGenerator> traffic, SimConfig config);

  /// Overrides the timing model compiled from SimConfig::timing for
  /// Engine::kAsync runs -- the hook for trace-derived models
  /// (TimingModel::from_trace), which need an optical design the config
  /// cannot name declaratively. Must match the network's coupler count.
  void set_timing_model(std::shared_ptr<const TimingModel> timing);

  /// Runs warmup + measurement (+ optional drain); returns the metrics of
  /// the measurement window.
  RunMetrics run();

  /// Per-coupler successful-transmission counts of the measured window
  /// (valid after run()).
  [[nodiscard]] const std::vector<std::int64_t>& coupler_successes() const {
    return coupler_success_;
  }

 private:
  void validate_config() const;
  RunMetrics run_event_queue();
  void slot();
  void enqueue(Packet packet, hypergraph::Node at);

  const hypergraph::StackGraph& network_;
  RoutingHooks routing_;
  /// Exactly one of these is set for the phased engines; the event-queue
  /// engine routes through routing_ (served from whichever table exists
  /// when the simulator was built from one).
  std::shared_ptr<const routing::CompiledRoutes> routes_;
  std::shared_ptr<const routing::CompressedRoutes> compressed_routes_;
  std::shared_ptr<const TimingModel> timing_model_;  ///< kAsync override
  std::unique_ptr<TrafficGenerator> traffic_;
  SimConfig config_;
  core::Rng rng_;
  EventQueue queue_;

  /// Virtual output queues: per node, per out-coupler slot (indexed by
  /// position of the coupler in out_hyperarcs(node)). Event-queue engine
  /// only; the phased engines use a SoA arena (voq_arena.hpp) internally.
  std::vector<std::vector<std::deque<Packet>>> voq_;
  std::vector<std::int64_t> token_;  ///< per coupler, round-robin cursor
  std::vector<std::int64_t> coupler_success_;
  RunMetrics metrics_;
  bool measuring_ = false;
  std::int64_t next_packet_id_ = 0;
  std::int64_t inflight_ = 0;
};

}  // namespace otis::sim
