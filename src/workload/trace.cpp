#include "workload/trace.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <utility>

#include "core/error.hpp"
#include "core/json.hpp"

namespace otis::workload {

namespace {

constexpr char kMagic[8] = {'O', 'T', 'I', 'S', 'T', 'R', 'C', '1'};

/// Explicit little-endian int64 IO: the on-disk format must not depend
/// on host byte order.
void write_i64(std::ofstream& out, std::int64_t value) {
  std::array<char, 8> bytes;
  auto v = static_cast<std::uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] = static_cast<char>(v >> (8 * i));
  }
  out.write(bytes.data(), 8);
}

bool read_i64(std::ifstream& in, std::int64_t& value) {
  std::array<char, 8> bytes;
  if (!in.read(bytes.data(), 8)) {
    return false;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  value = static_cast<std::int64_t>(v);
  return true;
}

Trace load_binary(std::ifstream& in, const std::string& path) {
  Trace trace;
  std::int64_t count = 0;
  OTIS_REQUIRE(read_i64(in, trace.nodes) && read_i64(in, count),
               "Trace: truncated header in " + path);
  OTIS_REQUIRE(count >= 0, "Trace: negative entry count in " + path);
  trace.entries.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    TraceEntry entry;
    OTIS_REQUIRE(read_i64(in, entry.slot) && read_i64(in, entry.source) &&
                     read_i64(in, entry.destination),
                 "Trace: truncated at entry " + std::to_string(i) + " of " +
                     std::to_string(count) + " in " + path);
    trace.entries.push_back(entry);
  }
  return trace;
}

Trace load_jsonl(std::ifstream& in, const std::string& path) {
  Trace trace;
  std::string line;
  OTIS_REQUIRE(static_cast<bool>(std::getline(in, line)),
               "Trace: empty trace file " + path);
  const core::Json header = core::Json::parse(line);
  trace.nodes = header.at("nodes").as_int();
  const std::int64_t count = header.at("entries").as_int();
  OTIS_REQUIRE(count >= 0, "Trace: negative entry count in " + path);
  trace.entries.reserve(static_cast<std::size_t>(count));
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    const core::Json row = core::Json::parse(line);
    // Rows carrying a "type" tag are typed metadata from the obs
    // channels (schema/sample/runtime rows); tolerate them so a trace
    // concatenated or interleaved with channel output still loads.
    // Extra fields on entry rows are ignored for the same reason.
    if (row.find("type") != nullptr) {
      continue;
    }
    trace.entries.push_back(TraceEntry{row.at("slot").as_int(),
                                       row.at("src").as_int(),
                                       row.at("dst").as_int()});
  }
  OTIS_REQUIRE(static_cast<std::int64_t>(trace.entries.size()) == count,
               "Trace: header announces " + std::to_string(count) +
                   " entries but " + path + " holds " +
                   std::to_string(trace.entries.size()) +
                   " (truncated file?)");
  return trace;
}

}  // namespace

void Trace::validate() const {
  OTIS_REQUIRE(nodes >= 1, "Trace: node count must be >= 1");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const TraceEntry& entry = entries[i];
    OTIS_REQUIRE(entry.slot >= 0, "Trace: negative generation slot at entry " +
                                      std::to_string(i));
    OTIS_REQUIRE(entry.source >= 0 && entry.source < nodes &&
                     entry.destination >= 0 && entry.destination < nodes,
                 "Trace: endpoint out of range at entry " +
                     std::to_string(i));
    OTIS_REQUIRE(entry.source != entry.destination,
                 "Trace: source equals destination at entry " +
                     std::to_string(i));
    if (i > 0) {
      const TraceEntry& prev = entries[i - 1];
      OTIS_REQUIRE(entry.slot >= prev.slot,
                   "Trace: generation slots not non-decreasing at entry " +
                       std::to_string(i));
      OTIS_REQUIRE(entry.slot > prev.slot || entry.source > prev.source,
                   "Trace: duplicate or unsorted (slot, source) at entry " +
                       std::to_string(i));
    }
  }
}

void Trace::save_binary(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  OTIS_REQUIRE(out.good(), "Trace: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  write_i64(out, nodes);
  write_i64(out, static_cast<std::int64_t>(entries.size()));
  for (const TraceEntry& entry : entries) {
    write_i64(out, entry.slot);
    write_i64(out, entry.source);
    write_i64(out, entry.destination);
  }
  out.flush();
  OTIS_REQUIRE(out.good(), "Trace: write to " + path + " failed");
}

void Trace::save_jsonl(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  OTIS_REQUIRE(out.good(), "Trace: cannot open " + path);
  out << "{\"nodes\": " << nodes << ", \"entries\": " << entries.size()
      << "}\n";
  for (const TraceEntry& entry : entries) {
    out << "{\"slot\": " << entry.slot << ", \"src\": " << entry.source
        << ", \"dst\": " << entry.destination << "}\n";
  }
  out.flush();
  OTIS_REQUIRE(out.good(), "Trace: write to " + path + " failed");
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  OTIS_REQUIRE(in.good(), "Trace: cannot open " + path);
  std::array<char, 8> magic{};
  const bool has_magic =
      in.read(magic.data(), 8) && std::equal(magic.begin(), magic.end(),
                                             std::begin(kMagic));
  Trace trace;
  if (has_magic) {
    trace = load_binary(in, path);
  } else {
    in.close();
    std::ifstream text(path);
    OTIS_REQUIRE(text.good(), "Trace: cannot open " + path);
    trace = load_jsonl(text, path);
  }
  trace.validate();
  return trace;
}

TraceRecorder::TraceRecorder(std::int64_t nodes) : nodes_(nodes) {
  OTIS_REQUIRE(nodes >= 1, "TraceRecorder: need at least one node");
}

void TraceRecorder::record(std::int64_t slot, hypergraph::Node source,
                           hypergraph::Node destination) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.push_back(TraceEntry{slot, source, destination});
}

Trace TraceRecorder::trace() const {
  Trace trace;
  trace.nodes = nodes_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    trace.entries = entries_;
  }
  // Canonical order: a node generates at most one packet per slot, so
  // (slot, source) is a total key and the sorted trace is independent
  // of the recording interleaving.
  std::sort(trace.entries.begin(), trace.entries.end(),
            [](const TraceEntry& a, const TraceEntry& b) {
              return a.slot != b.slot ? a.slot < b.slot
                                      : a.source < b.source;
            });
  trace.validate();
  return trace;
}

TraceWorkload::TraceWorkload(Trace trace) : trace_(std::move(trace)) {
  trace_.validate();
  OTIS_REQUIRE(!trace_.entries.empty(),
               "TraceWorkload: trace holds no packets");
  reset();
}

void TraceWorkload::reset() {
  cursor_ = 0;
  delivered_count_ = 0;
}

void TraceWorkload::poll(std::int64_t slot,
                         std::vector<WorkloadPacket>& out) {
  // Entries are sorted by (slot, source) and ids are positional, so
  // the emission is sorted by id.
  while (cursor_ < trace_.entries.size() &&
         trace_.entries[cursor_].slot <= slot) {
    const TraceEntry& entry = trace_.entries[cursor_];
    out.push_back(WorkloadPacket{static_cast<std::int64_t>(cursor_),
                                 entry.source, entry.destination});
    ++cursor_;
  }
}

void TraceWorkload::delivered(std::int64_t id) {
  OTIS_REQUIRE(id >= 0 && id < packet_count(),
               "TraceWorkload: delivered id out of range");
  ++delivered_count_;
}

}  // namespace otis::workload
