// Tests for the OTIS lens-plane geometry model: coordinates, lenslet
// centers, beam angles/lengths and their symmetry properties.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "otis/geometry.hpp"

namespace otis::otis {
namespace {

TEST(Geometry, PortPositionsFollowPitch) {
  OtisGeometry geom(Otis(3, 6), GeometryConfig{2.0, 100.0});
  EXPECT_DOUBLE_EQ(geom.input_position(0), 0.0);
  EXPECT_DOUBLE_EQ(geom.input_position(5), 10.0);
  EXPECT_DOUBLE_EQ(geom.output_position(17), 34.0);
}

TEST(Geometry, LensletCentersAreGroupMidpoints) {
  OtisGeometry geom(Otis(3, 6), GeometryConfig{1.0, 50.0});
  // Input group 0 spans ports 0..5 -> center 2.5.
  EXPECT_DOUBLE_EQ(geom.input_lenslet_center(0), 2.5);
  EXPECT_DOUBLE_EQ(geom.input_lenslet_center(2), 14.5);
  // Output groups have 3 ports each: group 0 spans 0..2 -> center 1.
  EXPECT_DOUBLE_EQ(geom.output_lenslet_center(0), 1.0);
  EXPECT_DOUBLE_EQ(geom.output_lenslet_center(5), 16.0);
}

TEST(Geometry, BeamEndpointsMatchTheTranspose) {
  Otis otis(3, 6);
  OtisGeometry geom(otis, GeometryConfig{1.0, 50.0});
  for (std::int64_t i = 0; i < otis.port_count(); ++i) {
    const Beam b = geom.beam(i);
    EXPECT_EQ(b.input_index, i);
    EXPECT_EQ(b.output_index, otis.output_index(otis.map(otis.input_port(i))));
    EXPECT_DOUBLE_EQ(b.x_in, geom.input_position(i));
    EXPECT_DOUBLE_EQ(b.x_out, geom.output_position(b.output_index));
  }
}

TEST(Geometry, CentralSymmetryOfTheTranspose) {
  // The OTIS map reverses both coordinates, so the beam pattern is
  // centrally symmetric: beam(i) and beam(P-1-i) have opposite angles.
  Otis otis(4, 5);
  OtisGeometry geom(otis, GeometryConfig{1.0, 40.0});
  const std::int64_t ports = otis.port_count();
  for (std::int64_t i = 0; i < ports; ++i) {
    const Beam a = geom.beam(i);
    const Beam b = geom.beam(ports - 1 - i);
    EXPECT_NEAR(a.angle_rad, -b.angle_rad, 1e-12);
    EXPECT_NEAR(a.length, b.length, 1e-12);
  }
}

TEST(Geometry, AnglesBoundedByPlaneExtent) {
  Otis otis(3, 6);
  OtisGeometry geom(otis, GeometryConfig{1.0, 50.0});
  const double extreme =
      std::atan2(geom.input_position(otis.port_count() - 1), 50.0);
  EXPECT_LE(geom.max_angle_rad(), extreme + 1e-12);
  EXPECT_GT(geom.max_angle_rad(), 0.0);
}

TEST(Geometry, LargerSeparationShrinksAngles) {
  Otis otis(3, 6);
  OtisGeometry near_planes(otis, GeometryConfig{1.0, 20.0});
  OtisGeometry far_planes(otis, GeometryConfig{1.0, 200.0});
  EXPECT_GT(near_planes.max_angle_rad(), far_planes.max_angle_rad());
}

TEST(Geometry, BeamLengthAtLeastSeparation) {
  OtisGeometry geom(Otis(2, 4), GeometryConfig{1.0, 30.0});
  for (const Beam& b : geom.all_beams()) {
    EXPECT_GE(b.length, 30.0);
  }
  EXPECT_GE(geom.total_beam_length(),
            30.0 * static_cast<double>(geom.otis().port_count()));
}

TEST(Geometry, SquareOtisAntiDiagonalBeamsAreStraight) {
  // Fixed points of OTIS(g,g) (anti-diagonal ports) map to themselves:
  // zero-angle beams.
  Otis otis(4, 4);
  OtisGeometry geom(otis, GeometryConfig{1.0, 10.0});
  std::int64_t straight = 0;
  for (const Beam& b : geom.all_beams()) {
    if (std::abs(b.angle_rad) < 1e-12) {
      ++straight;
    }
  }
  EXPECT_EQ(straight, 4);
}

TEST(Geometry, RejectsBadConfig) {
  EXPECT_THROW(OtisGeometry(Otis(2, 2), GeometryConfig{0.0, 10.0}),
               core::Error);
  EXPECT_THROW(OtisGeometry(Otis(2, 2), GeometryConfig{1.0, -1.0}),
               core::Error);
}

}  // namespace
}  // namespace otis::otis
