#pragma once
/// \file phased_engine.hpp
/// Direct three-phase slot engines behind OpsNetworkSim.
///
/// One simulated slot is three phases over flat state:
///   1. generate  -- every node asks its traffic source for a packet and
///                   pushes it onto the VOQ chosen by the route view;
///   2. arbitrate -- every coupler scans its flattened (source, voq-slot)
///                   feed, picks winners (sim/arbitration.hpp) and pops
///                   them off their ring buffers;
///   3. receive   -- every winner is consumed by its relay: counted as
///                   delivered at the destination or re-enqueued onward.
///
/// The engine is templated over the RouteView (route_view.hpp): the
/// dense CompiledRoutes and the group-factored CompressedRoutes compile
/// into the same loop with no virtual dispatch, so a hop stays two
/// array loads (+ the group/copy arithmetic for compressed tables).
/// Because both views answer every query identically, the two
/// instantiations are bit-identical for every seed and thread count.
///
/// Serial mode iterates nodes then couplers in id order drawing from the
/// single legacy RNG stream, which makes it bit-identical to the
/// event-queue engine for every seed. Sharded mode partitions nodes and
/// couplers across worker threads with barrier-synced phases; all
/// randomness comes from per-node (generation) and per-coupler
/// (arbitration) streams, so the outcome is a pure function of the seed
/// -- identical for every thread count and every partition.
///
/// Workload (closed-loop) mode -- SimConfig::workload set -- replaces
/// the fixed measure window with run-to-completion: phase 1 injects the
/// packets the workload reports eligible (plus open-loop background
/// traffic until the workload completes), phase 3 feeds deliveries back
/// to the workload, and the loop ends when every workload packet has
/// been delivered and the network drained. BOTH serial and sharded
/// workload runs use the per-node/per-coupler streams, so workload
/// results are bit-identical across engines as well as thread counts.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "routing/compiled_routes.hpp"
#include "routing/compressed_routes.hpp"
#include "routing/route_view.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"
#include "sim/ring_buffer.hpp"
#include "sim/traffic.hpp"

namespace otis::sim {

/// Internal engine used by OpsNetworkSim for Engine::kPhased and
/// Engine::kSharded. Single-run object: construct, run() once.
template <routing::RouteView Routes>
class PhasedEngineT {
 public:
  /// All references must outlive the engine. `config` must be validated
  /// by the caller (OpsNetworkSim does).
  PhasedEngineT(const hypergraph::StackGraph& network, const Routes& routes,
                TrafficGenerator& traffic, const SimConfig& config);

  /// Runs the configured window; returns measurement-window metrics and
  /// fills per-coupler success counts (sized to the coupler count).
  RunMetrics run(std::vector<std::int64_t>& coupler_success);

 private:
  RunMetrics run_serial(std::vector<std::int64_t>& coupler_success);
  RunMetrics run_sharded(std::vector<std::int64_t>& coupler_success);
  RunMetrics run_workload_serial(std::vector<std::int64_t>& coupler_success);
  RunMetrics run_workload_sharded(std::vector<std::int64_t>& coupler_success);

  const hypergraph::StackGraph& network_;
  const Routes& routes_;
  TrafficGenerator& traffic_;
  const SimConfig& config_;

  std::int64_t nodes_ = 0;
  std::int64_t couplers_ = 0;
  /// Flat VOQ pool: node v's queues are voq_[voq_base_[v] + slot].
  std::vector<std::int64_t> voq_base_;
  std::vector<RingBuffer<Packet>> voq_;
  std::vector<std::int64_t> token_;
};

/// The dense-table instantiation, the default engine.
using PhasedEngine = PhasedEngineT<routing::CompiledRoutes>;

extern template class PhasedEngineT<routing::CompiledRoutes>;
extern template class PhasedEngineT<routing::CompressedRoutes>;

}  // namespace otis::sim
