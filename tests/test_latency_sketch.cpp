// The O(1)-memory latency sketch (LatencyStats::use_sketch):
//  - count, mean (exact integer sum), min-clamped and max statistics
//    match full-sample mode exactly;
//  - percentiles answer within the documented kSketchRelativeError
//    (1/32) relative bound and never overshoot the exact value;
//  - values below 2^kSketchSubBits land in exact unit buckets;
//  - use_sketch() folds already-recorded samples and is idempotent;
//  - merge() stays an order-independent fold in sketch mode and
//    promotes the destination on mixed-mode merges;
//  - serialize()/deserialize() round-trips both representations;
//  - LatencyMode::kAuto resolves to the sketch exactly at the
//    kAutoLatencySketchNodes threshold.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/blob.hpp"
#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"

namespace otis {
namespace {

using sim::LatencyStats;

/// Deterministic 64-bit mix (splitmix64) -- no external RNG state, so
/// the sample sets below are stable across platforms and reruns.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A latency-shaped sample set: mostly small values with a heavy tail
/// spanning several octaves, like queueing delays under load.
std::vector<std::int64_t> tailed_samples(std::size_t n,
                                         std::uint64_t seed = 1) {
  std::vector<std::int64_t> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t r = mix(seed + i);
    const int octaves = static_cast<int>(r % 21);  // 0..20 -> up to ~2M
    values.push_back(
        static_cast<std::int64_t>(mix(r) % (std::uint64_t{1} << octaves)));
  }
  return values;
}

void record_all(LatencyStats& stats, const std::vector<std::int64_t>& values) {
  for (const std::int64_t v : values) {
    stats.record(v);
  }
}

constexpr double kQuantiles[] = {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0};

/// The documented contract: a sketch percentile is never above the
/// exact one and within kSketchRelativeError of it (plus one slot of
/// integer-floor slack).
void expect_percentiles_within_bound(const LatencyStats& exact,
                                     const LatencyStats& sketch) {
  ASSERT_EQ(sketch.count(), exact.count());
  EXPECT_DOUBLE_EQ(sketch.mean(), exact.mean());
  EXPECT_EQ(sketch.max(), exact.max());
  for (const double q : kQuantiles) {
    SCOPED_TRACE(q);
    const std::int64_t p_exact = exact.percentile(q);
    const std::int64_t p_sketch = sketch.percentile(q);
    EXPECT_LE(p_sketch, p_exact);
    EXPECT_GE(static_cast<double>(p_sketch),
              (1.0 - LatencyStats::kSketchRelativeError) *
                      static_cast<double>(p_exact) -
                  1.0);
  }
}

TEST(LatencySketch, SmallValuesAreExact) {
  // Everything below 2^kSketchSubBits has its own unit bucket: the
  // sketch is not approximate at all there.
  LatencyStats exact;
  LatencyStats sketch;
  sketch.use_sketch();
  for (std::int64_t v = 0; v < (std::int64_t{1} << LatencyStats::kSketchSubBits);
       ++v) {
    for (std::int64_t rep = 0; rep <= v % 3; ++rep) {
      exact.record(v);
      sketch.record(v);
    }
  }
  ASSERT_EQ(sketch.count(), exact.count());
  for (const double q : kQuantiles) {
    EXPECT_EQ(sketch.percentile(q), exact.percentile(q)) << "q=" << q;
  }
}

TEST(LatencySketch, PercentilesWithinRelativeErrorBound) {
  const std::vector<std::int64_t> values = tailed_samples(20000);
  LatencyStats exact;
  LatencyStats sketch;
  sketch.use_sketch();
  record_all(exact, values);
  record_all(sketch, values);
  EXPECT_FALSE(exact.sketch());
  EXPECT_TRUE(sketch.sketch());
  expect_percentiles_within_bound(exact, sketch);
}

TEST(LatencySketch, UseSketchFoldsExistingSamplesAndIsIdempotent) {
  const std::vector<std::int64_t> values = tailed_samples(5000, 7);
  LatencyStats exact;
  record_all(exact, values);

  LatencyStats folded;
  record_all(folded, values);  // recorded in full mode first
  folded.use_sketch();
  folded.use_sketch();  // idempotent
  EXPECT_TRUE(folded.sketch());
  expect_percentiles_within_bound(exact, folded);

  // Folding then recording must equal recording in sketch mode all
  // along (the buckets do not care when the switch happened).
  LatencyStats native;
  native.use_sketch();
  record_all(native, values);
  for (const double q : kQuantiles) {
    EXPECT_EQ(folded.percentile(q), native.percentile(q)) << "q=" << q;
  }
}

TEST(LatencySketch, MergeIsOrderIndependent) {
  const std::vector<std::int64_t> a_values = tailed_samples(3000, 11);
  const std::vector<std::int64_t> b_values = tailed_samples(3000, 13);
  const std::vector<std::int64_t> c_values = tailed_samples(3000, 17);
  auto make = [](const std::vector<std::int64_t>& values) {
    LatencyStats s;
    s.use_sketch();
    record_all(s, values);
    return s;
  };
  LatencyStats abc = make(a_values);
  abc.merge(make(b_values));
  abc.merge(make(c_values));
  LatencyStats cba = make(c_values);
  cba.merge(make(b_values));
  cba.merge(make(a_values));
  ASSERT_EQ(abc.count(), cba.count());
  EXPECT_DOUBLE_EQ(abc.mean(), cba.mean());
  EXPECT_EQ(abc.max(), cba.max());
  for (const double q : kQuantiles) {
    EXPECT_EQ(abc.percentile(q), cba.percentile(q)) << "q=" << q;
  }
}

TEST(LatencySketch, MixedModeMergePromotesToSketch) {
  const std::vector<std::int64_t> a_values = tailed_samples(4000, 19);
  const std::vector<std::int64_t> b_values = tailed_samples(4000, 23);
  LatencyStats exact;
  record_all(exact, a_values);
  record_all(exact, b_values);

  // Full destination, sketch source: the destination promotes first.
  LatencyStats full_dst;
  record_all(full_dst, a_values);
  LatencyStats sketch_src;
  sketch_src.use_sketch();
  record_all(sketch_src, b_values);
  full_dst.merge(sketch_src);
  EXPECT_TRUE(full_dst.sketch());
  expect_percentiles_within_bound(exact, full_dst);

  // Sketch destination, full source: samples fold into the buckets.
  LatencyStats sketch_dst;
  sketch_dst.use_sketch();
  record_all(sketch_dst, a_values);
  LatencyStats full_src;
  record_all(full_src, b_values);
  sketch_dst.merge(full_src);
  EXPECT_TRUE(sketch_dst.sketch());
  for (const double q : kQuantiles) {
    EXPECT_EQ(sketch_dst.percentile(q), full_dst.percentile(q)) << "q=" << q;
  }
}

TEST(LatencySketch, SerializeRoundTripsBothModes) {
  const std::vector<std::int64_t> values = tailed_samples(2500, 29);
  for (const bool sketch_mode : {false, true}) {
    SCOPED_TRACE(sketch_mode ? "sketch" : "full");
    LatencyStats original;
    if (sketch_mode) {
      original.use_sketch();
    }
    record_all(original, values);

    core::BlobWriter out;
    original.serialize(out);
    core::BlobReader in(out.bytes());
    LatencyStats restored;
    restored.deserialize(in);
    EXPECT_TRUE(in.at_end());

    EXPECT_EQ(restored.sketch(), sketch_mode);
    ASSERT_EQ(restored.count(), original.count());
    EXPECT_DOUBLE_EQ(restored.mean(), original.mean());
    EXPECT_EQ(restored.max(), original.max());
    for (const double q : kQuantiles) {
      EXPECT_EQ(restored.percentile(q), original.percentile(q)) << "q=" << q;
    }

    // The restored object keeps recording correctly.
    restored.record(12345);
    EXPECT_EQ(restored.count(), original.count() + 1);
  }
}

TEST(LatencySketch, ReserveIsANoOpInSketchMode) {
  LatencyStats stats;
  stats.use_sketch();
  stats.reserve(std::int64_t{1} << 40);  // must not try to allocate 8 TiB
  stats.record(3);
  EXPECT_EQ(stats.count(), 1);
}

TEST(LatencySketch, EmptyStatsAnswerZero) {
  LatencyStats sketch;
  sketch.use_sketch();
  EXPECT_EQ(sketch.count(), 0);
  EXPECT_DOUBLE_EQ(sketch.mean(), 0.0);
  EXPECT_EQ(sketch.max(), 0);
  EXPECT_EQ(sketch.percentile(0.5), 0);
}

TEST(LatencySketch, AutoModeFlipsAtTheNodeThreshold) {
  using sim::LatencyMode;
  EXPECT_FALSE(sim::resolve_latency_sketch(LatencyMode::kAuto,
                                           sim::kAutoLatencySketchNodes - 1));
  EXPECT_TRUE(sim::resolve_latency_sketch(LatencyMode::kAuto,
                                          sim::kAutoLatencySketchNodes));
  EXPECT_TRUE(sim::resolve_latency_sketch(LatencyMode::kSketch, 2));
  EXPECT_FALSE(sim::resolve_latency_sketch(LatencyMode::kFull,
                                           std::int64_t{1} << 40));
}

}  // namespace
}  // namespace otis
