#include "sim/traffic.hpp"

#include "core/error.hpp"

namespace otis::sim {

namespace {

std::int64_t uniform_other(std::int64_t node, std::int64_t nodes,
                           core::Rng& rng) {
  if (nodes <= 1) {
    return node;
  }
  // Draw from the n-1 nodes != node without rejection.
  std::int64_t dest = static_cast<std::int64_t>(
      rng.uniform(static_cast<std::uint64_t>(nodes - 1)));
  if (dest >= node) {
    ++dest;
  }
  return dest;
}

}  // namespace

UniformTraffic::UniformTraffic(std::int64_t nodes, double load)
    : nodes_(nodes), load_(load) {
  OTIS_REQUIRE(nodes >= 1, "UniformTraffic: need at least one node");
  OTIS_REQUIRE(load >= 0.0 && load <= 1.0,
               "UniformTraffic: load must be in [0, 1]");
}

TrafficDemand UniformTraffic::demand(std::int64_t node, core::Rng& rng) {
  if (!rng.bernoulli(load_)) {
    return {};
  }
  return TrafficDemand{true, uniform_other(node, nodes_, rng)};
}

HotspotTraffic::HotspotTraffic(std::int64_t nodes, double load,
                               std::int64_t hot_node, double hot_fraction)
    : nodes_(nodes),
      load_(load),
      hot_node_(hot_node),
      hot_fraction_(hot_fraction) {
  OTIS_REQUIRE(nodes >= 1, "HotspotTraffic: need at least one node");
  OTIS_REQUIRE(hot_node >= 0 && hot_node < nodes,
               "HotspotTraffic: hot node out of range");
  OTIS_REQUIRE(hot_fraction >= 0.0 && hot_fraction <= 1.0,
               "HotspotTraffic: hot fraction must be in [0, 1]");
}

TrafficDemand HotspotTraffic::demand(std::int64_t node, core::Rng& rng) {
  if (!rng.bernoulli(load_)) {
    return {};
  }
  if (node != hot_node_ && rng.bernoulli(hot_fraction_)) {
    return TrafficDemand{true, hot_node_};
  }
  return TrafficDemand{true, uniform_other(node, nodes_, rng)};
}

PermutationTraffic::PermutationTraffic(std::int64_t nodes, double load,
                                       std::uint64_t seed)
    : load_(load) {
  OTIS_REQUIRE(nodes >= 1, "PermutationTraffic: need at least one node");
  core::Rng rng(seed);
  auto perm = rng.permutation(static_cast<std::size_t>(nodes));
  partner_.assign(perm.begin(), perm.end());
  // Fix the (rare) fixed points by swapping with a neighbour so no node
  // targets itself.
  for (std::int64_t i = 0; i < nodes && nodes > 1; ++i) {
    if (partner_[static_cast<std::size_t>(i)] == i) {
      const std::int64_t j = (i + 1) % nodes;
      std::swap(partner_[static_cast<std::size_t>(i)],
                partner_[static_cast<std::size_t>(j)]);
    }
  }
}

TrafficDemand PermutationTraffic::demand(std::int64_t node, core::Rng& rng) {
  if (!rng.bernoulli(load_)) {
    return {};
  }
  return TrafficDemand{true, partner_[static_cast<std::size_t>(node)]};
}

BurstyTraffic::BurstyTraffic(std::int64_t nodes, double peak_load,
                             double enter_on, double exit_on)
    : nodes_(nodes),
      peak_load_(peak_load),
      enter_on_(enter_on),
      exit_on_(exit_on),
      on_(static_cast<std::size_t>(nodes), 0) {
  OTIS_REQUIRE(nodes >= 1, "BurstyTraffic: need at least one node");
  OTIS_REQUIRE(peak_load >= 0.0 && peak_load <= 1.0,
               "BurstyTraffic: peak load must be in [0, 1]");
  OTIS_REQUIRE(enter_on > 0.0 && enter_on <= 1.0,
               "BurstyTraffic: enter_on must be in (0, 1]");
  OTIS_REQUIRE(exit_on > 0.0 && exit_on <= 1.0,
               "BurstyTraffic: exit_on must be in (0, 1]");
}

double BurstyTraffic::mean_load() const {
  // Stationary P(on) of the two-state chain: enter / (enter + exit).
  return peak_load_ * enter_on_ / (enter_on_ + exit_on_);
}

TrafficDemand BurstyTraffic::demand(std::int64_t node, core::Rng& rng) {
  char& state = on_[static_cast<std::size_t>(node)];
  if (state) {
    if (rng.bernoulli(exit_on_)) {
      state = 0;
    }
  } else if (rng.bernoulli(enter_on_)) {
    state = 1;
  }
  if (!state || !rng.bernoulli(peak_load_)) {
    return {};
  }
  return TrafficDemand{true, uniform_other(node, nodes_, rng)};
}

SaturationTraffic::SaturationTraffic(std::int64_t nodes) : nodes_(nodes) {
  OTIS_REQUIRE(nodes >= 1, "SaturationTraffic: need at least one node");
}

TrafficDemand SaturationTraffic::demand(std::int64_t node, core::Rng& rng) {
  return TrafficDemand{true, uniform_other(node, nodes_, rng)};
}

}  // namespace otis::sim
