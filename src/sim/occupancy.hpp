#pragma once
/// \file occupancy.hpp
/// Coupler-feed indexing and occupancy bitmasks for the slot engines.
///
/// Phase 2 of the slot loop asks, for every coupler, "which of my feed
/// VOQs are non-empty?". The seed answered by chasing every feed's ring
/// buffer through two indirections per position; the engines now keep
/// the answer materialized as bitmask words maintained on VOQ push/pop:
///
///  - FeedIndex is the immutable geometry of one network: the flattened
///    feed -> VOQ map (qi = voq_base[source] + slot precomputed per feed
///    position) and the (word, bit) coordinates of each VOQ in its
///    coupler's request mask. Each VOQ feeds exactly one coupler, so the
///    reverse maps are well defined, and the feed positions of coupler h
///    are bits [0, feed_count) of the words at mask_base[h].
///
///  - OccupancyMasks is the per-run mutable state: one request bit per
///    feed position (set iff that VOQ is non-empty) plus a summary
///    bitmap over couplers, so arbitration skips empty couplers with a
///    count-trailing-zeros scan instead of touching their queues at all,
///    and pick_winners consumes the request words directly.
///
/// The sharded engine does not share these masks across threads (that
/// would put atomics on the hot path); it rebuilds a coupler's request
/// word locally from the FeedIndex during its arbitration phase.

#include <cstdint>
#include <vector>

#include "hypergraph/stack_graph.hpp"
#include "obs/probe.hpp"

namespace otis::sim::detail {

/// Immutable per-network feed geometry (see file comment). Build once
/// per engine; shared by every run mode.
struct FeedIndex {
  std::vector<std::int64_t> feed_base;  ///< per coupler: feed_qi offset (+1)
  std::vector<std::int64_t> feed_qi;    ///< VOQ index per feed position
  std::vector<std::int64_t> mask_base;  ///< per coupler: first word (+1)
  std::vector<std::int64_t> voq_word;   ///< per VOQ: its request word
  std::vector<std::uint8_t> voq_bit;    ///< per VOQ: bit within the word
  std::vector<std::int64_t> voq_coupler;  ///< per VOQ: the coupler it feeds

  void build(const hypergraph::DirectedHypergraph& hg,
             const std::vector<std::int64_t>& voq_base) {
    const hypergraph::HyperarcId couplers = hg.hyperarc_count();
    feed_base.assign(static_cast<std::size_t>(couplers) + 1, 0);
    mask_base.assign(static_cast<std::size_t>(couplers) + 1, 0);
    for (hypergraph::HyperarcId h = 0; h < couplers; ++h) {
      const std::int64_t count = hg.coupler_feed(h).count;
      feed_base[static_cast<std::size_t>(h) + 1] =
          feed_base[static_cast<std::size_t>(h)] + count;
      mask_base[static_cast<std::size_t>(h) + 1] =
          mask_base[static_cast<std::size_t>(h)] + (count + 63) / 64;
    }
    feed_qi.assign(static_cast<std::size_t>(feed_base.back()), 0);
    voq_word.assign(static_cast<std::size_t>(voq_base.back()), 0);
    voq_bit.assign(static_cast<std::size_t>(voq_base.back()), 0);
    voq_coupler.assign(static_cast<std::size_t>(voq_base.back()), 0);
    for (hypergraph::HyperarcId h = 0; h < couplers; ++h) {
      const hypergraph::CouplerFeed feed = hg.coupler_feed(h);
      for (std::int64_t si = 0; si < feed.count; ++si) {
        const std::size_t qi = static_cast<std::size_t>(
            voq_base[static_cast<std::size_t>(feed.source[si])] +
            feed.slot[si]);
        feed_qi[static_cast<std::size_t>(
            feed_base[static_cast<std::size_t>(h)] + si)] =
            static_cast<std::int64_t>(qi);
        voq_word[qi] = mask_base[static_cast<std::size_t>(h)] + si / 64;
        voq_bit[qi] = static_cast<std::uint8_t>(si % 64);
        voq_coupler[qi] = h;
      }
    }
  }

  [[nodiscard]] std::size_t coupler_count() const noexcept {
    return feed_base.size() - 1;
  }
};

/// Per-run occupancy state over a FeedIndex (see file comment). The
/// owner calls mark_nonempty on a VOQ's 0 -> 1 size transition and
/// mark_empty on 1 -> 0; the serial/async engines do this inline in
/// their enqueue/pop paths.
struct OccupancyMasks {
  std::vector<std::uint64_t> request;  ///< FeedIndex::mask_base layout
  std::vector<std::uint64_t> active;   ///< summary bitmap over couplers

  void init(const FeedIndex& fi) {
    request.assign(static_cast<std::size_t>(fi.mask_base.back()), 0);
    active.assign((fi.coupler_count() + 63) / 64, 0);
  }

  void mark_nonempty(const FeedIndex& fi, std::size_t qi) {
    request[static_cast<std::size_t>(fi.voq_word[qi])] |=
        std::uint64_t{1} << fi.voq_bit[qi];
    const std::uint64_t h = static_cast<std::uint64_t>(fi.voq_coupler[qi]);
    active[h >> 6] |= std::uint64_t{1} << (h & 63);
  }

  void mark_empty(const FeedIndex& fi, std::size_t qi) {
    request[static_cast<std::size_t>(fi.voq_word[qi])] &=
        ~(std::uint64_t{1} << fi.voq_bit[qi]);
    const std::int64_t h = fi.voq_coupler[qi];
    // Clear the summary bit only once every request word went dark.
    for (std::int64_t w = fi.mask_base[static_cast<std::size_t>(h)];
         w < fi.mask_base[static_cast<std::size_t>(h) + 1]; ++w) {
      if (request[static_cast<std::size_t>(w)] != 0) {
        return;
      }
    }
    active[static_cast<std::uint64_t>(h) >> 6] &=
        ~(std::uint64_t{1} << (static_cast<std::uint64_t>(h) & 63));
  }
};

/// Telemetry helper shared by the phased and async engines: observes
/// each coupler of [begin, end) into the occupancy histogram probe
/// with the total queued packets across its feed VOQs. Runs only at
/// sampling boundaries -- it walks every feed of the range.
template <class Arena>
void observe_occupancy(obs::ProbeRegistry& reg, obs::ProbeId hist,
                       const FeedIndex& fi, const Arena& voq,
                       std::int64_t begin, std::int64_t end) {
  for (std::int64_t h = begin; h < end; ++h) {
    const std::size_t fb =
        static_cast<std::size_t>(fi.feed_base[static_cast<std::size_t>(h)]);
    const std::size_t fe = static_cast<std::size_t>(
        fi.feed_base[static_cast<std::size_t>(h) + 1]);
    std::int64_t queued = 0;
    for (std::size_t f = fb; f < fe; ++f) {
      queued += static_cast<std::int64_t>(
          voq.size(static_cast<std::size_t>(fi.feed_qi[f])));
    }
    reg.observe(hist, queued);
  }
}

}  // namespace otis::sim::detail
