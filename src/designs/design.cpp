#include "designs/design.hpp"

#include <sstream>

#include "core/error.hpp"

namespace otis::designs {

std::int64_t NetworkDesign::processor_of_receiver(
    optics::ComponentId rx) const {
  auto it = rx_owner_.find(rx);
  OTIS_REQUIRE(it != rx_owner_.end(),
               "NetworkDesign: component is not a registered receiver");
  return it->second;
}

void NetworkDesign::finalize() {
  rx_owner_.clear();
  for (std::int64_t p = 0;
       p < static_cast<std::int64_t>(rx_of_processor.size()); ++p) {
    for (optics::ComponentId rx :
         rx_of_processor[static_cast<std::size_t>(p)]) {
      rx_owner_[rx] = p;
    }
  }
}

std::int64_t BillOfMaterials::total_otis_blocks() const {
  std::int64_t total = 0;
  for (const auto& [shape, count] : otis_blocks) {
    total += count;
  }
  return total;
}

std::int64_t BillOfMaterials::total_lenslets() const {
  std::int64_t total = 0;
  for (const auto& [shape, count] : otis_blocks) {
    total += count * 2 * shape.first * shape.second;
  }
  return total;
}

std::string BillOfMaterials::to_string() const {
  std::ostringstream oss;
  oss << transmitters << " transmitters, " << receivers << " receivers, "
      << multiplexers << " multiplexers, " << beam_splitters
      << " beam-splitters, " << fibers << " fibers";
  for (const auto& [shape, count] : otis_blocks) {
    oss << ", " << count << "x OTIS(" << shape.first << "," << shape.second
        << ")";
  }
  return oss.str();
}

BillOfMaterials bill_of_materials(const optics::Netlist& n) {
  BillOfMaterials bom;
  for (optics::ComponentId id = 0; id < n.component_count(); ++id) {
    const optics::Component& c = n.component(id);
    switch (c.kind) {
      case optics::ComponentKind::kTransmitter:
        ++bom.transmitters;
        break;
      case optics::ComponentKind::kReceiver:
        ++bom.receivers;
        break;
      case optics::ComponentKind::kMultiplexer:
        ++bom.multiplexers;
        break;
      case optics::ComponentKind::kBeamSplitter:
        ++bom.beam_splitters;
        break;
      case optics::ComponentKind::kFiber:
        ++bom.fibers;
        break;
      case optics::ComponentKind::kOtis:
        ++bom.otis_blocks[{c.otis_groups, c.otis_group_size}];
        break;
    }
  }
  return bom;
}

}  // namespace otis::designs
