#pragma once
/// \file event_queue.hpp
/// Generic discrete-event simulation core.
///
/// The OPS network simulator is slot-synchronous (single-wavelength
/// couplers make time naturally slotted), but it is built on this
/// general event engine so that asynchronous extensions (tuning
/// latencies, unequal propagation delays) slot in without rework.
/// Events at equal times fire in schedule order (stable FIFO tie-break),
/// which keeps runs bit-reproducible.
///
/// This priority-queue implementation backs the seed-faithful
/// Engine::kEventQueue loop (a tests-only fixture since the async layer
/// landed); the asynchronous extensions themselves run on its O(1)
/// calendar-queue rewrite, calendar_queue.hpp.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace otis::sim {

/// Simulation clock type: abstract time units. The slot-aligned engines
/// count whole slots (1 unit = 1 slot); the asynchronous timing layer
/// counts fixed-point sub-slot *ticks* (1 slot = kTicksPerSlot units),
/// which is what lets tuning latencies and propagation skew smaller than
/// a slot stay exact integers. Both interpretations share this type --
/// an engine picks one and sticks to it.
using SimTime = std::int64_t;

/// Fixed-point sub-slot resolution: 1 slot = 2^kSubSlotBits ticks.
inline constexpr int kSubSlotBits = 10;
inline constexpr SimTime kTicksPerSlot = SimTime{1} << kSubSlotBits;

/// Whole slots -> ticks (the async engines' native unit).
[[nodiscard]] constexpr SimTime ticks_from_slots(SimTime slots) noexcept {
  return slots * kTicksPerSlot;
}

/// Tick -> the slot it falls in (floor).
[[nodiscard]] constexpr SimTime slot_of_tick(SimTime tick) noexcept {
  return tick >> kSubSlotBits;
}

/// A deterministic discrete-event engine.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (>= now()).
  void schedule_at(SimTime at, Action action);

  /// Schedules `action` `delay` units after now().
  void schedule_in(SimTime delay, Action action);

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// True when no events remain.
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const noexcept {
    return events_.size();
  }

  /// Runs events until the queue drains or the next event is later than
  /// `until`, then advances the clock to `until`. Returns the number of
  /// events executed.
  std::int64_t run_until(SimTime until);

  /// Runs everything (use with care: actions may self-perpetuate). The
  /// clock ends at the last executed event's time.
  std::int64_t run_all();

 private:
  /// Shared body of run_until/run_all: executes events with time <=
  /// `until` in (time, seq) order, advancing the clock to each.
  std::int64_t drain(SimTime until);

  struct Entry {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace otis::sim
