#include "routing/fault_tolerant.hpp"

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"

namespace otis::routing {

using topology::Word;

FaultTolerantKautzRouter::FaultTolerantKautzRouter(topology::Kautz kautz)
    : router_(std::move(kautz)) {}

std::vector<std::vector<std::int64_t>>
FaultTolerantKautzRouter::candidate_paths(std::int64_t source,
                                          std::int64_t target) const {
  const topology::Kautz& kautz = router_.kautz();
  const int alphabet = kautz.alphabet();
  const Word src = kautz.word_of(source);
  const Word dst = kautz.word_of(target);

  std::vector<std::vector<std::int64_t>> candidates;
  std::set<std::vector<std::int64_t>> seen;
  auto add_words = [&](std::vector<Word> words) {
    std::vector<std::int64_t> path;
    path.reserve(words.size());
    for (const Word& w : words) {
      path.push_back(kautz.vertex_of(w));
    }
    if (seen.insert(path).second) {
      candidates.push_back(std::move(path));
    }
  };

  // Primary label route, length k - overlap.
  add_words(router_.route_words(src, dst));

  // One-letter detours: x -> x.z -> label route, length <= k + 1.
  for (int z = 0; z < alphabet; ++z) {
    if (z == src.back()) {
      continue;
    }
    Word via = topology::Kautz::shift(src, z);
    auto tail = router_.route_words(via, dst);
    std::vector<Word> words{src};
    words.insert(words.end(), tail.begin(), tail.end());
    add_words(std::move(words));
  }

  // Two-letter detours: x -> x.z1 -> x.z1.z2 -> label route, <= k + 2.
  for (int z1 = 0; z1 < alphabet; ++z1) {
    if (z1 == src.back()) {
      continue;
    }
    Word via1 = topology::Kautz::shift(src, z1);
    for (int z2 = 0; z2 < alphabet; ++z2) {
      if (z2 == z1) {
        continue;
      }
      Word via2 = topology::Kautz::shift(via1, z2);
      auto tail = router_.route_words(via2, dst);
      std::vector<Word> words{src, via1};
      words.insert(words.end(), tail.begin(), tail.end());
      add_words(std::move(words));
    }
  }

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() < b.size();
                   });
  return candidates;
}

bool FaultTolerantKautzRouter::path_avoids(
    const std::vector<std::int64_t>& path,
    const std::vector<std::int64_t>& faulty) const {
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (std::find(faulty.begin(), faulty.end(), path[i]) != faulty.end()) {
      return false;
    }
  }
  return true;
}

std::optional<FaultTolerantRoute> FaultTolerantKautzRouter::route_avoiding(
    std::int64_t source, std::int64_t target,
    const std::vector<std::int64_t>& faulty) const {
  for (auto& candidate : candidate_paths(source, target)) {
    if (path_avoids(candidate, faulty)) {
      return FaultTolerantRoute{std::move(candidate), false};
    }
  }
  auto bfs = graph::shortest_path_avoiding(router_.kautz().graph(), source,
                                           target, faulty);
  if (!bfs) {
    return std::nullopt;
  }
  return FaultTolerantRoute{std::move(*bfs), true};
}

bool FaultTolerantKautzRouter::survives_with_bound(
    std::int64_t source, std::int64_t target,
    const std::vector<std::int64_t>& faulty) const {
  auto route = route_avoiding(source, target, faulty);
  if (!route) {
    return false;
  }
  const std::int64_t hops =
      static_cast<std::int64_t>(route->path.size()) - 1;
  return hops <= router_.kautz().diameter() + 2;
}

std::optional<FaultTolerantRoute>
FaultTolerantKautzRouter::route_avoiding_arcs(
    std::int64_t source, std::int64_t target,
    const std::vector<graph::Arc>& faulty_arcs) const {
  auto arc_is_faulty = [&](std::int64_t u, std::int64_t v) {
    return std::find(faulty_arcs.begin(), faulty_arcs.end(),
                     graph::Arc{u, v}) != faulty_arcs.end();
  };
  for (auto& candidate : candidate_paths(source, target)) {
    bool clean = true;
    for (std::size_t i = 0; i + 1 < candidate.size(); ++i) {
      if (arc_is_faulty(candidate[i], candidate[i + 1])) {
        clean = false;
        break;
      }
    }
    if (clean) {
      return FaultTolerantRoute{std::move(candidate), false};
    }
  }
  auto bfs = graph::shortest_path_avoiding_arcs(router_.kautz().graph(),
                                                source, target, faulty_arcs);
  if (!bfs) {
    return std::nullopt;
  }
  return FaultTolerantRoute{std::move(*bfs), true};
}

bool FaultTolerantKautzRouter::survives_arc_faults_with_bound(
    std::int64_t source, std::int64_t target,
    const std::vector<graph::Arc>& faulty_arcs) const {
  auto route = route_avoiding_arcs(source, target, faulty_arcs);
  if (!route) {
    return false;
  }
  return static_cast<std::int64_t>(route->path.size()) - 1 <=
         router_.kautz().diameter() + 2;
}

}  // namespace otis::routing
