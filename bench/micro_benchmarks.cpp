// Google-benchmark microbenchmarks for the hot paths of the library:
// topology construction, the Kautz word bijection, label/arithmetic
// routing, line digraph iteration, optical design construction +
// verification, and the simulator's slot rate.

#include <benchmark/benchmark.h>

#include <memory>

#include "designs/builders.hpp"
#include "designs/verify.hpp"
#include "graph/algorithms.hpp"
#include "graph/line_digraph.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "otis/imase_itoh_realization.hpp"
#include "routing/imase_itoh_routing.hpp"
#include "routing/kautz_routing.hpp"
#include "routing/stack_routing.hpp"
#include "sim/ops_network.hpp"
#include "topology/imase_itoh.hpp"
#include "topology/kautz.hpp"

namespace {

void BM_KautzConstruction(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  for (auto _ : state) {
    otis::topology::Kautz kautz(d, k);
    benchmark::DoNotOptimize(kautz.graph().size());
  }
  state.SetLabel("KG(" + std::to_string(d) + "," + std::to_string(k) + ")");
}
BENCHMARK(BM_KautzConstruction)->Args({3, 3})->Args({4, 4})->Args({5, 4});

void BM_KautzWordBijection(benchmark::State& state) {
  otis::topology::Kautz kautz(4, 4);  // 500 nodes
  std::int64_t v = 0;
  for (auto _ : state) {
    auto word = kautz.word_of(v);
    benchmark::DoNotOptimize(kautz.vertex_of(word));
    v = (v + 1) % kautz.order();
  }
}
BENCHMARK(BM_KautzWordBijection);

void BM_KautzLabelRoute(benchmark::State& state) {
  otis::topology::Kautz kautz(4, 4);
  otis::routing::KautzRouter router(kautz);
  std::int64_t u = 1;
  std::int64_t v = kautz.order() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(u, v));
    u = (u + 7) % kautz.order();
    v = (v + 13) % kautz.order();
  }
}
BENCHMARK(BM_KautzLabelRoute);

void BM_ImaseItohArithmeticRoute(benchmark::State& state) {
  otis::topology::ImaseItoh ii(4, static_cast<std::int64_t>(state.range(0)));
  otis::routing::ImaseItohRouter router(ii);
  std::int64_t u = 1;
  std::int64_t v = ii.order() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route_labels(u, v));
    u = (u + 7) % ii.order();
    v = (v + 13) % ii.order();
  }
}
BENCHMARK(BM_ImaseItohArithmeticRoute)->Arg(100)->Arg(1000)->Arg(10000);

void BM_BfsDiameter(benchmark::State& state) {
  otis::topology::Kautz kautz(3, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(otis::graph::diameter(kautz.graph()));
  }
}
BENCHMARK(BM_BfsDiameter)->Arg(2)->Arg(3);

void BM_LineDigraph(benchmark::State& state) {
  otis::topology::Kautz kautz(3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        otis::graph::line_digraph(kautz.graph()).graph.size());
  }
}
BENCHMARK(BM_LineDigraph);

void BM_Proposition1Verify(benchmark::State& state) {
  otis::otis::ImaseItohRealization real(
      4, static_cast<std::int64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(real.verify(nullptr));
  }
}
BENCHMARK(BM_Proposition1Verify)->Arg(64)->Arg(1024);

void BM_StackKautzDesignBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto design = otis::designs::stack_kautz_design(6, 3, 2);
    benchmark::DoNotOptimize(design.netlist.component_count());
  }
}
BENCHMARK(BM_StackKautzDesignBuild);

void BM_StackKautzDesignVerify(benchmark::State& state) {
  auto design = otis::designs::stack_kautz_design(6, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(otis::designs::verify_design(design).ok);
  }
}
BENCHMARK(BM_StackKautzDesignVerify);

void BM_SimulatorSlots(benchmark::State& state) {
  // Measures whole short runs; report slots/second via counters.
  const double load = 0.3;
  std::int64_t slots = 0;
  for (auto _ : state) {
    otis::hypergraph::StackKautz sk(6, 3, 2);
    otis::routing::StackKautzRouter router(sk);
    otis::sim::RoutingHooks hooks;
    hooks.next_coupler = [&](otis::hypergraph::Node c,
                             otis::hypergraph::Node d) {
      return router.next_coupler(c, d);
    };
    hooks.relay_on = [&](otis::hypergraph::HyperarcId h,
                         otis::hypergraph::Node d) {
      return router.relay_on(h, d);
    };
    otis::sim::SimConfig config;
    config.warmup_slots = 0;
    config.measure_slots = 500;
    config.seed = 1;
    otis::sim::OpsNetworkSim sim(
        sk.stack(), hooks,
        std::make_unique<otis::sim::UniformTraffic>(72, load), config);
    benchmark::DoNotOptimize(sim.run().delivered_packets);
    slots += 500;
  }
  state.counters["slots/s"] = benchmark::Counter(
      static_cast<double>(slots), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorSlots)->Unit(benchmark::kMillisecond);

}  // namespace
