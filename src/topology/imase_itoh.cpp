#include "topology/imase_itoh.hpp"

#include "core/error.hpp"
#include "core/mathutil.hpp"

namespace otis::topology {

ImaseItoh::ImaseItoh(int degree, std::int64_t order) : d_(degree), n_(order) {
  OTIS_REQUIRE(d_ >= 1, "ImaseItoh: degree must be >= 1");
  OTIS_REQUIRE(n_ >= d_, "ImaseItoh: order must be >= degree");
  std::vector<graph::Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(d_));
  for (std::int64_t u = 0; u < n_; ++u) {
    for (int alpha = 1; alpha <= d_; ++alpha) {
      arcs.push_back(graph::Arc{u, successor_impl(u, alpha)});
    }
  }
  graph_ = graph::Digraph::from_arcs(n_, arcs);
}

std::int64_t ImaseItoh::successor(std::int64_t u, int alpha) const {
  OTIS_REQUIRE(u >= 0 && u < n_, "ImaseItoh::successor: vertex out of range");
  OTIS_REQUIRE(alpha >= 1 && alpha <= d_,
               "ImaseItoh::successor: alpha out of range");
  return successor_impl(u, alpha);
}

std::vector<std::int64_t> ImaseItoh::successors(std::int64_t u) const {
  std::vector<std::int64_t> result;
  result.reserve(static_cast<std::size_t>(d_));
  for (int alpha = 1; alpha <= d_; ++alpha) {
    result.push_back(successor(u, alpha));
  }
  return result;
}

int ImaseItoh::alpha_of_arc(std::int64_t u, std::int64_t v) const {
  // v = (-d*u - alpha) mod n  <=>  alpha = (-d*u - v) mod n.
  std::int64_t alpha = core::floor_mod(-static_cast<std::int64_t>(d_) * u - v,
                                       n_);
  if (alpha >= 1 && alpha <= d_) {
    return static_cast<int>(alpha);
  }
  return 0;
}

unsigned ImaseItoh::diameter_formula() const {
  if (n_ <= 1 || d_ < 2) {
    return n_ <= 1 ? 0 : static_cast<unsigned>(n_ - 1);
  }
  return core::ceil_log(d_, n_);
}

bool ImaseItoh::is_kautz() const {
  // n = d^{k-1} (d+1): strip factors of d, the remainder must be d+1
  // (k >= 2), or n == d+1 directly (k = 1).
  std::int64_t m = n_;
  if (m == d_ + 1) {
    return true;
  }
  if (d_ == 1) {
    return m == 2;
  }
  while (m % d_ == 0) {
    m /= d_;
    if (m == d_ + 1) {
      return true;
    }
  }
  return false;
}

int ImaseItoh::kautz_diameter() const {
  OTIS_REQUIRE(is_kautz(), "ImaseItoh::kautz_diameter: not a Kautz order");
  std::int64_t m = n_;
  int k = 1;
  while (m != d_ + 1) {
    m /= d_;
    ++k;
  }
  return k;
}

}  // namespace otis::topology
