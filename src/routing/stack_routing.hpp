#pragma once
/// \file stack_routing.hpp
/// Routing on the multi-OPS networks: stack-Kautz (paper Sec. 2.7 --
/// "the stack-Kautz network inherits most of the properties of the Kautz
/// graph, like shortest path routing") and POPS (single-hop).
///
/// A route on a stack-graph is a sequence of coupler transmissions. For
/// SK(s, d, k) the group-level path is the Kautz label route; at each hop
/// the message is broadcast to all s processors of the next group and
/// the designated relay (the processor whose in-group index matches the
/// destination's) forwards it. Same-group traffic uses the loop coupler.

#include <cstdint>
#include <vector>

#include "hypergraph/pops.hpp"
#include "hypergraph/stack_kautz.hpp"
#include "routing/kautz_routing.hpp"

namespace otis::routing {

/// One transmission: `sender` puts the packet on `coupler`; `relay` is
/// the processor that picks it up (the destination on the last hop).
struct StackHop {
  hypergraph::Node sender = 0;
  hypergraph::HyperarcId coupler = 0;
  hypergraph::Node relay = 0;
};

/// Shortest-path router for SK(s, d, k).
class StackKautzRouter {
 public:
  explicit StackKautzRouter(const hypergraph::StackKautz& network);

  /// Number of coupler transmissions between two processors:
  /// 0 if equal, 1 if same group (loop coupler), else the Kautz distance
  /// between the groups.
  [[nodiscard]] int distance(hypergraph::Node source,
                             hypergraph::Node target) const;

  /// The hop sequence (empty when source == target). Relays are chosen
  /// deterministically: the member of the next group whose in-group index
  /// equals the destination's, so the final hop needs no extra delivery.
  [[nodiscard]] std::vector<StackHop> route(hypergraph::Node source,
                                            hypergraph::Node target) const;

  /// Next coupler for a packet currently held by `current` and destined
  /// for `target` (used by the simulator's per-slot forwarding).
  [[nodiscard]] hypergraph::HyperarcId next_coupler(
      hypergraph::Node current, hypergraph::Node target) const;

  /// The relay that picks the packet off `coupler` when heading for
  /// `target`.
  [[nodiscard]] hypergraph::Node relay_on(hypergraph::HyperarcId coupler,
                                          hypergraph::Node target) const;

  /// Worst-case hops: network diameter k (plus the loop hop counts as 1).
  [[nodiscard]] int max_hops() const;

 private:
  const hypergraph::StackKautz& network_;
  KautzRouter kautz_router_;
};

/// Single-hop router for POPS(t, g): every packet crosses exactly the
/// coupler (group(source), group(target)).
class PopsRouter {
 public:
  explicit PopsRouter(const hypergraph::Pops& network);

  /// Always 1 for distinct processors (0 for self).
  [[nodiscard]] int distance(hypergraph::Node source,
                             hypergraph::Node target) const;

  [[nodiscard]] std::vector<StackHop> route(hypergraph::Node source,
                                            hypergraph::Node target) const;

  [[nodiscard]] hypergraph::HyperarcId next_coupler(
      hypergraph::Node current, hypergraph::Node target) const;

 private:
  const hypergraph::Pops& network_;
};

}  // namespace otis::routing
