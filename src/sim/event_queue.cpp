#include "sim/event_queue.hpp"

#include <limits>

#include "core/error.hpp"

namespace otis::sim {

void EventQueue::schedule_at(SimTime at, Action action) {
  OTIS_REQUIRE(at >= now_, "EventQueue: cannot schedule in the past");
  events_.push(Entry{at, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(SimTime delay, Action action) {
  OTIS_REQUIRE(delay >= 0, "EventQueue: negative delay");
  schedule_at(now_ + delay, std::move(action));
}

std::int64_t EventQueue::drain(SimTime until) {
  std::int64_t executed = 0;
  while (!events_.empty() && events_.top().time <= until) {
    // priority_queue::top is const; move via const_cast is UB, so copy
    // the action handle out before popping.
    Entry entry{events_.top().time, events_.top().seq, events_.top().action};
    events_.pop();
    now_ = entry.time;
    entry.action();
    ++executed;
  }
  return executed;
}

std::int64_t EventQueue::run_until(SimTime until) {
  const std::int64_t executed = drain(until);
  if (now_ < until) {
    now_ = until;
  }
  return executed;
}

std::int64_t EventQueue::run_all() {
  return drain(std::numeric_limits<SimTime>::max());
}

}  // namespace otis::sim
