#pragma once
/// \file line_digraph.hpp
/// Line digraph operator L(G) (Fiol, Yebra, Alegre 1984).
///
/// The paper's Fig. 6 presents Kautz graphs as iterated line digraphs:
/// KG(d,1) = K_{d+1} and KG(d,k) = L^{k-1}(K_{d+1}). The same operator
/// links Imase-Itoh graphs: L(II(d,n)) is isomorphic to II(d, d*n), with
/// the explicit arc numbering phi(u, alpha) = d*u + alpha - 1 -- exactly
/// the numbering this implementation produces when the base graph stores
/// its arcs in Imase-Itoh order (alpha = 1..d per tail). That fact is the
/// backbone of the Kautz-word <-> Imase-Itoh-integer bijection in
/// topology/kautz.cpp.

#include "graph/digraph.hpp"

namespace otis::graph {

/// Result of the line digraph construction: the graph L(G) plus the
/// correspondence between L(G)'s vertices and G's arcs.
struct LineDigraph {
  Digraph graph;               ///< L(G); vertex x == arc x of G (CSR order)
  std::vector<Arc> arc_of;     ///< arc_of[x] = the G-arc that is vertex x
};

/// Builds L(G): one vertex per arc of G; an arc from vertex a=(u,v) to
/// vertex b=(v,w) for every pair of consecutive arcs. Vertex numbering is
/// G's CSR arc numbering; outgoing arcs of a vertex are emitted in the CSR
/// order of the head's out-arcs.
[[nodiscard]] LineDigraph line_digraph(const Digraph& g);

/// Applies line_digraph k times.
[[nodiscard]] Digraph iterated_line_digraph(const Digraph& g, unsigned k);

}  // namespace otis::graph
