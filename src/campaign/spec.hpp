#pragma once
/// \file spec.hpp
/// Declarative experiment-campaign specifications.
///
/// The paper's results are grids of simulation cells -- topology x
/// arbitration x load x wavelengths x seed. A CampaignSpec names every
/// axis of one grid declaratively (in code or as a JSON file, see
/// parse_campaign_spec); the grid/runner layers expand and execute it.
///
/// TopologySpec is the bridge between the declarative world and the
/// concrete network classes: CompiledTopology::build constructs the
/// hypergraph (StackKautz / Pops / StackImaseItoh) and bakes its routing
/// into one CompiledRoutes, which the runner shares via shared_ptr across
/// every cell of that topology -- the one-compile-per-topology contract
/// the ROADMAP's batch-experiment item asks for. Builds are counted by a
/// process-wide counter so tests can assert that contract.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hypergraph/stack_graph.hpp"
#include "routing/compiled_routes.hpp"
#include "sim/ops_network.hpp"

namespace otis::campaign {

/// One topology axis value: which network family plus its parameters.
struct TopologySpec {
  enum class Kind {
    kStackKautz,      ///< SK(s, d, k)
    kPops,            ///< POPS(t, g)
    kStackImaseItoh,  ///< SII(s, d, n)
  };

  Kind kind = Kind::kStackKautz;
  std::int64_t stacking = 1;  ///< s (SK/SII) or group size t (POPS)
  std::int64_t degree = 0;    ///< d (SK/SII); unused for POPS
  std::int64_t order = 0;     ///< diameter k (SK), group count g/n (POPS/SII)

  [[nodiscard]] static TopologySpec stack_kautz(std::int64_t s, std::int64_t d,
                                                std::int64_t k);
  [[nodiscard]] static TopologySpec pops(std::int64_t t, std::int64_t g);
  [[nodiscard]] static TopologySpec stack_imase_itoh(std::int64_t s,
                                                     std::int64_t d,
                                                     std::int64_t n);

  /// Canonical label, e.g. "SK(4,3,2)", "POPS(6,12)", "SII(4,2,12)".
  /// Doubles as the topology part of cell IDs, so it must stay stable.
  [[nodiscard]] std::string label() const;

  [[nodiscard]] bool operator==(const TopologySpec& other) const noexcept {
    return kind == other.kind && stacking == other.stacking &&
           degree == other.degree && order == other.order;
  }
};

/// A topology built and routed once, shared read-only by many cells.
class CompiledTopology {
 public:
  /// Constructs the network and compiles its routing tables (exactly one
  /// CompiledRoutes::compile per call; bumps topology_compile_count()).
  [[nodiscard]] static std::shared_ptr<const CompiledTopology> build(
      const TopologySpec& spec);

  [[nodiscard]] const TopologySpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  [[nodiscard]] const hypergraph::StackGraph& stack() const noexcept {
    return *stack_;
  }
  [[nodiscard]] const std::shared_ptr<const routing::CompiledRoutes>& routes()
      const noexcept {
    return routes_;
  }
  [[nodiscard]] std::int64_t processor_count() const noexcept {
    return processors_;
  }
  [[nodiscard]] std::int64_t coupler_count() const noexcept {
    return couplers_;
  }

 private:
  CompiledTopology() = default;

  TopologySpec spec_;
  std::string label_;
  std::shared_ptr<const void> owner_;  ///< keeps the network object alive
  const hypergraph::StackGraph* stack_ = nullptr;
  std::shared_ptr<const routing::CompiledRoutes> routes_;
  std::int64_t processors_ = 0;
  std::int64_t couplers_ = 0;
};

/// Process-wide count of CompiledTopology::build calls (== routing-table
/// compiles). Tests reset it, run a campaign, and assert one per topology.
[[nodiscard]] std::int64_t topology_compile_count() noexcept;
void reset_topology_compile_count() noexcept;

/// Traffic families a campaign can drive (see sim/traffic.hpp).
enum class TrafficKind {
  kUniform,     ///< Bernoulli(load), uniform destinations
  kSaturation,  ///< always-backlogged; the load axis is ignored
};

[[nodiscard]] const char* traffic_kind_name(TrafficKind kind);

/// The declarative experiment grid. Cells = topologies x arbitrations x
/// loads x wavelengths x seeds, every combination simulated once.
struct CampaignSpec {
  std::string name = "campaign";
  std::vector<TopologySpec> topologies;
  std::vector<sim::Arbitration> arbitrations{
      sim::Arbitration::kTokenRoundRobin};
  TrafficKind traffic = TrafficKind::kUniform;
  std::vector<double> loads{0.5};
  std::vector<std::int64_t> wavelengths{1};
  std::vector<std::uint64_t> seeds{1};

  /// Per-cell simulator window (see SimConfig).
  std::int64_t warmup_slots = 200;
  std::int64_t measure_slots = 1000;
  std::int64_t queue_capacity = 0;

  /// Engine every cell runs on; engine_threads feeds SimConfig.threads
  /// for kSharded cells (results are thread-count invariant by design).
  sim::Engine engine = sim::Engine::kPhased;
  int engine_threads = 1;

  /// Total cell count of the expanded grid.
  [[nodiscard]] std::int64_t cell_count() const noexcept;

  /// Throws core::Error when any axis is empty or a window is invalid.
  void validate() const;
};

/// Parses a spec from its JSON form. Schema (README "Running campaigns"):
/// {
///   "name": "paper-grid",
///   "topologies": [{"kind": "stack_kautz", "s": 4, "d": 3, "k": 2},
///                  {"kind": "pops", "t": 6, "g": 12},
///                  {"kind": "stack_imase_itoh", "s": 4, "d": 2, "n": 12}],
///   "arbitrations": ["token", "random", "aloha"],
///   "traffic": "uniform",
///   "loads": [0.1, 0.5, 0.9],
///   "wavelengths": [1, 2, 4],
///   "seeds": [1, 2, 3],
///   "warmup_slots": 200, "measure_slots": 1000, "queue_capacity": 0,
///   "engine": "phased", "engine_threads": 1
/// }
/// Every field except "topologies" has the CampaignSpec default.
[[nodiscard]] CampaignSpec parse_campaign_spec(const std::string& json_text);

/// parse_campaign_spec over the contents of `path`.
[[nodiscard]] CampaignSpec load_campaign_spec(const std::string& path);

}  // namespace otis::campaign
