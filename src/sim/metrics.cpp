#include "sim/metrics.hpp"

#include <algorithm>

#include "core/blob.hpp"

namespace otis::sim {

void LatencyStats::use_sketch() {
  if (sketch_) {
    return;
  }
  sketch_ = true;
  buckets_.assign(kSketchBuckets, 0);
  // Fold anything recorded before the switch (mixed-mode merge path).
  for (std::int64_t s : samples_) {
    record_sketch(s);
  }
  samples_.clear();
  samples_.shrink_to_fit();
  sorted_ = true;
}

void LatencyStats::merge(const LatencyStats& other) {
  if (!sketch_ && other.sketch_) {
    use_sketch();
  }
  if (sketch_) {
    if (other.sketch_) {
      if (other.sketch_count_ == 0) {
        return;
      }
      for (std::size_t i = 0; i < kSketchBuckets; ++i) {
        buckets_[i] += other.buckets_[i];
      }
      sketch_count_ += other.sketch_count_;
      sketch_sum_ += other.sketch_sum_;
      sketch_min_ = std::min(sketch_min_, other.sketch_min_);
      sketch_max_ = std::max(sketch_max_, other.sketch_max_);
    } else {
      for (std::int64_t s : other.samples_) {
        record_sketch(s);
      }
    }
    return;
  }
  // Reserve the combined size up front: aggregate folds over many seeds
  // append repeatedly and would otherwise reallocate on every merge.
  samples_.reserve(samples_.size() + other.samples_.size());
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double LatencyStats::mean() const {
  if (sketch_) {
    if (sketch_count_ == 0) {
      return 0.0;
    }
    // The sum is exact in both modes, so sketch means match full means.
    return static_cast<double>(sketch_sum_) /
           static_cast<double>(sketch_count_);
  }
  if (samples_.empty()) {
    return 0.0;
  }
  // Exact integer sum: the mean is a pure function of the sample
  // multiset, independent of recording order (the sharded engine merges
  // per-worker stats and must stay bit-identical across thread counts).
  std::int64_t total = 0;
  for (std::int64_t s : samples_) {
    total += s;
  }
  return static_cast<double>(total) / static_cast<double>(samples_.size());
}

std::int64_t LatencyStats::max() const {
  if (sketch_) {
    return sketch_count_ == 0 ? 0 : sketch_max_;
  }
  if (samples_.empty()) {
    return 0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

std::int64_t LatencyStats::percentile(double q) const {
  if (sketch_) {
    if (sketch_count_ == 0) {
      return 0;
    }
    if (q <= 0.0) {
      return sketch_min_;
    }
    if (q >= 1.0) {
      return sketch_max_;
    }
    // Same nearest-rank rule as the full-sample path, answered from the
    // cumulative bucket counts; the bucket floor is never above the
    // exact sample and within kSketchRelativeError of it.
    const auto rank = static_cast<std::int64_t>(
        q * static_cast<double>(sketch_count_ - 1) + 0.5);
    std::int64_t cum = 0;
    for (std::size_t i = 0; i < kSketchBuckets; ++i) {
      cum += buckets_[i];
      if (cum > rank) {
        return std::clamp(bucket_floor(i), sketch_min_, sketch_max_);
      }
    }
    return sketch_max_;
  }
  if (samples_.empty()) {
    return 0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0.0) {
    return samples_.front();
  }
  if (q >= 1.0) {
    return samples_.back();
  }
  const std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(rank, samples_.size() - 1)];
}

void LatencyStats::serialize(core::BlobWriter& out) const {
  out.put_u8(sketch_ ? 1 : 0);
  if (sketch_) {
    out.put_i64(sketch_count_);
    out.put_i64(sketch_sum_);
    out.put_i64(sketch_min_);
    out.put_i64(sketch_max_);
    // Sparse encoding: most of the ~1900 buckets are empty.
    std::int64_t occupied = 0;
    for (std::int64_t b : buckets_) {
      occupied += b != 0 ? 1 : 0;
    }
    out.put_i64(occupied);
    for (std::size_t i = 0; i < kSketchBuckets; ++i) {
      if (buckets_[i] != 0) {
        out.put_u64(i);
        out.put_i64(buckets_[i]);
      }
    }
  } else {
    out.put_i64_vec(samples_);
  }
}

void LatencyStats::deserialize(core::BlobReader& in) {
  const bool sketch = in.get_u8() != 0;
  if (sketch) {
    sketch_ = false;
    samples_.clear();
    use_sketch();
    sketch_count_ = in.get_i64();
    sketch_sum_ = in.get_i64();
    sketch_min_ = in.get_i64();
    sketch_max_ = in.get_i64();
    const std::int64_t occupied = in.get_i64();
    for (std::int64_t k = 0; k < occupied; ++k) {
      const std::uint64_t i = in.get_u64();
      buckets_.at(static_cast<std::size_t>(i)) = in.get_i64();
    }
  } else {
    sketch_ = false;
    buckets_.clear();
    sketch_count_ = 0;
    sketch_sum_ = 0;
    sketch_min_ = std::numeric_limits<std::int64_t>::max();
    sketch_max_ = std::numeric_limits<std::int64_t>::min();
    samples_ = in.get_i64_vec();
    sorted_ = false;
  }
}

double RunMetrics::throughput_per_node(std::int64_t nodes) const {
  if (slots == 0 || nodes == 0) {
    return 0.0;
  }
  return static_cast<double>(delivered_packets) /
         (static_cast<double>(slots) * static_cast<double>(nodes));
}

double RunMetrics::coupler_utilization(std::int64_t couplers) const {
  if (slots == 0 || couplers == 0) {
    return 0.0;
  }
  return static_cast<double>(coupler_transmissions) /
         (static_cast<double>(slots) * static_cast<double>(couplers));
}

}  // namespace otis::sim
