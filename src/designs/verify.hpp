#pragma once
/// \file verify.hpp
/// End-to-end verification of optical designs by light tracing.
///
/// A design claims to realize a topology (NetworkDesign::target_*). The
/// verifier reconstructs what the optics *actually* connect, using only
/// the netlist (transmitters, lens transposes, multiplexers, splitters,
/// fibers, receivers), and compares:
///
///  - multi-OPS designs: every lightpath must traverse exactly one
///    multiplexer (one OPS coupler); grouping lightpaths by that coupler
///    must reproduce the target hypergraph's hyperarcs source-set by
///    source-set and target-set by target-set;
///  - point-to-point designs: every transmitter must reach exactly one
///    receiver through zero couplers, and the induced digraph must equal
///    the target arc-for-arc.
///
/// This turns the paper's Proposition 1, Corollary 1 and the Sec. 4
/// constructions into machine-checked statements about physical wiring.

#include <cstdint>
#include <string>

#include "designs/design.hpp"
#include "optics/power.hpp"

namespace otis::designs {

/// Outcome of a verification run.
struct VerificationResult {
  bool ok = false;
  std::string details;             ///< first failure, empty when ok
  std::int64_t lightpaths = 0;     ///< transmitter->receiver paths traced
  std::int64_t couplers_seen = 0;  ///< distinct multiplexers on lightpaths
  double max_loss_db = 0.0;        ///< worst path loss under `model`
};

/// Verifies `design` against its own declared target (hypergraph or
/// digraph). `model` only affects the reported loss, not correctness.
[[nodiscard]] VerificationResult verify_design(
    const NetworkDesign& design, const optics::LossModel& model = {});

}  // namespace otis::designs
