# Empty dependencies file for otisnet.
# This may be replaced when dependencies are built.
