#pragma once
/// \file otis_swap.hpp
/// OTIS-G "swap" networks (Zane-Marchand-Paturi-Esener 1996, paper ref
/// [24]) and the paper's concluding corollary.
///
/// An OTIS-G multiprocessor takes a factor network G on n nodes and
/// builds n^2 processors (g, p): inside a group, processors are wired
/// electronically along G; between groups, processor (g, p) has a single
/// free-space optical link to its transpose (p, g) -- one OTIS(n, n)
/// plane provides all of them. Ref [24] realizes hypercubes, 4-D meshes,
/// mesh-of-trees and butterflies this way.
///
/// The paper's closing remark -- "the OTIS architecture can be viewed as
/// the graph of Imase and Itoh. Therefore, properties of existing
/// OTIS-based networks can be studied using the properties of such a
/// graph" -- is checkable here: the swap edges of OTIS-G are exactly the
/// OTIS(n, n) port permutation, which by Proposition 1 is the arc set of
/// II(n, n) = K+_n under node relabeling; see bench/tab7_otis_networks.

#include <cstdint>
#include <utility>

#include "graph/digraph.hpp"

namespace otis::topology {

/// The OTIS-G (swap) network over a factor digraph.
class OtisSwapNetwork {
 public:
  /// Builds the n^2-processor network from factor `g` (n = g.order()).
  /// Every factor arc (p, q) becomes an intra-group arc (x,p) -> (x,q)
  /// in every group x; every processor (x, p) with x != p gets the
  /// optical swap arc (x, p) -> (p, x). (x, x) processors have no
  /// optical link, exactly as in ref [24].
  explicit OtisSwapNetwork(graph::Digraph factor);

  [[nodiscard]] const graph::Digraph& factor() const noexcept {
    return factor_;
  }
  [[nodiscard]] const graph::Digraph& graph() const noexcept {
    return graph_;
  }

  /// n^2 processors.
  [[nodiscard]] std::int64_t order() const noexcept {
    return graph_.order();
  }

  /// Processor id of (group, index).
  [[nodiscard]] graph::Vertex node_of(graph::Vertex group,
                                      graph::Vertex index) const;

  /// (group, index) of a processor id.
  [[nodiscard]] std::pair<graph::Vertex, graph::Vertex> label_of(
      graph::Vertex node) const;

  /// Number of optical (swap) arcs: n^2 - n.
  [[nodiscard]] std::int64_t optical_arc_count() const;

  /// Number of electronic (intra-group) arcs: n * |A(G)|.
  [[nodiscard]] std::int64_t electronic_arc_count() const;

 private:
  graph::Digraph factor_;
  graph::Digraph graph_;
};

}  // namespace otis::topology
