#pragma once
/// \file experiment.hpp
/// Multi-trial experiment runner: load sweeps with independent seeds,
/// fanned out over a thread pool (each trial builds its own simulator,
/// so trials share nothing and scale embarrassingly).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/ops_network.hpp"

namespace otis::sim {

/// Aggregated results of one sweep point: per-metric mean and population
/// stddev over the trials (seeds) folded in. Points combine through
/// merge(), which is trial-count weighted and order-independent, so
/// partial aggregates (per shard, per campaign resume segment) fold into
/// the same totals as a single pass.
struct SweepPoint {
  double load = 0.0;
  double throughput_per_node = 0.0;  ///< delivered / node / slot
  double mean_latency = 0.0;         ///< slots
  double p95_latency = 0.0;          ///< slots
  double coupler_utilization = 0.0;  ///< successful coupler-slots fraction
  double collision_rate = 0.0;       ///< collisions / coupler / slot
  double delivered_fraction = 0.0;   ///< delivered / offered
  double makespan = 0.0;             ///< workload completion slots (0 =
                                     ///< open loop; see RunMetrics)
  /// Population stddev of the metric above it across trials (0 for a
  /// single trial).
  double throughput_stddev = 0.0;
  double mean_latency_stddev = 0.0;
  double p95_latency_stddev = 0.0;
  double coupler_utilization_stddev = 0.0;
  double collision_rate_stddev = 0.0;
  double delivered_fraction_stddev = 0.0;
  double makespan_stddev = 0.0;
  std::int64_t trials = 0;

  /// A single-trial point (stddevs 0) from one run's metrics; the
  /// normalizations match the original sweep aggregation.
  [[nodiscard]] static SweepPoint from_trial(const RunMetrics& metrics,
                                             double load, std::int64_t nodes,
                                             std::int64_t couplers);

  /// Folds `other` in, weighting every mean/stddev by trial counts
  /// (parallel variance combination). Merging into a zero-trial point
  /// copies `other`'s statistics. The load label is kept from *this
  /// unless it has no trials yet.
  void merge(const SweepPoint& other);
};

/// Builds a fresh simulator for (load, seed). The factory owns nothing;
/// it is called once per trial, possibly from several threads at once,
/// and must hand back an independent simulator.
using TrialFactory =
    std::function<RunMetrics(double load, std::uint64_t seed)>;

/// Runs `seeds` trials per load and averages. `threads` <= 0 means
/// hardware concurrency.
[[nodiscard]] std::vector<SweepPoint> run_load_sweep(
    const TrialFactory& factory, const std::vector<double>& loads,
    std::int64_t nodes, std::int64_t couplers,
    const std::vector<std::uint64_t>& seeds, int threads = 0);

}  // namespace otis::sim
