#include "core/work_pool.hpp"

#include "core/error.hpp"

namespace otis::core {

WorkStealingPool::WorkStealingPool(int threads) {
  int count = threads;
  if (count <= 0) {
    count = static_cast<int>(std::thread::hardware_concurrency());
    if (count <= 0) {
      count = 1;
    }
  }
  queues_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back(
        [this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool WorkStealingPool::try_acquire(std::size_t self, std::size_t& item) {
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.items.empty()) {
      item = own.items.front();
      own.items.pop_front();
      return true;
    }
  }
  // Steal from the back of the victim with work, scanning round-robin
  // from our right-hand neighbour.
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    Queue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.items.empty()) {
      item = victim.items.back();
      victim.items.pop_back();
      return true;
    }
  }
  return false;
}

void WorkStealingPool::worker_main(std::size_t self) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // job_ != nullptr keeps late wakers out of a batch that already
      // finished (run() clears the pointer before returning).
      start_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && epoch_ != seen_epoch);
      });
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      job = job_;
      ++active_;
    }
    std::size_t item = 0;
    while (try_acquire(self, item)) {
      std::exception_ptr error;
      try {
        (*job)(item, self);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (error && !first_error_) {
        first_error_ = error;
      }
      --remaining_;
    }
    // run() returns only once every worker that entered the batch has
    // also left it, so `job` can never dangle into the next batch.
    std::lock_guard<std::mutex> lock(mutex_);
    if (--active_ == 0 && remaining_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void WorkStealingPool::run(std::size_t count,
                           const std::function<void(std::size_t)>& fn) {
  run(count, std::function<void(std::size_t, std::size_t)>(
                 [&fn](std::size_t item, std::size_t) { fn(item); }));
}

void WorkStealingPool::run(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    OTIS_REQUIRE(job_ == nullptr, "WorkStealingPool: run() is not reentrant");
    // Contiguous blocks: worker w owns items [w*len, (w+1)*len). Early
    // cells land on low workers, which keeps the runner's ordered emit
    // buffer shallow.
    const std::size_t workers = queues_.size();
    const std::size_t base = count / workers;
    const std::size_t extra = count % workers;
    std::size_t next = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t len = base + (w < extra ? 1 : 0);
      for (std::size_t i = 0; i < len; ++i) {
        queues_[w]->items.push_back(next++);
      }
    }
    job_ = &fn;
    remaining_ = count;
    first_error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0 && active_ == 0; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) {
    std::rethrow_exception(error);
  }
}

}  // namespace otis::core
