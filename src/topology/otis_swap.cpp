#include "topology/otis_swap.hpp"

#include "core/error.hpp"

namespace otis::topology {

OtisSwapNetwork::OtisSwapNetwork(graph::Digraph factor)
    : factor_(std::move(factor)) {
  const graph::Vertex n = factor_.order();
  OTIS_REQUIRE(n >= 1, "OtisSwapNetwork: factor must be non-empty");
  std::vector<graph::Arc> arcs;
  arcs.reserve(static_cast<std::size_t>(n * factor_.size() + n * n - n));
  for (graph::Vertex x = 0; x < n; ++x) {
    // Electronic copy of the factor inside group x.
    for (const graph::Arc& a : factor_.arcs()) {
      arcs.push_back(graph::Arc{x * n + a.tail, x * n + a.head});
    }
    // Optical transpose links.
    for (graph::Vertex p = 0; p < n; ++p) {
      if (p != x) {
        arcs.push_back(graph::Arc{x * n + p, p * n + x});
      }
    }
  }
  graph_ = graph::Digraph::from_arcs(n * n, arcs);
}

graph::Vertex OtisSwapNetwork::node_of(graph::Vertex group,
                                       graph::Vertex index) const {
  const graph::Vertex n = factor_.order();
  OTIS_REQUIRE(group >= 0 && group < n && index >= 0 && index < n,
               "OtisSwapNetwork::node_of: label out of range");
  return group * n + index;
}

std::pair<graph::Vertex, graph::Vertex> OtisSwapNetwork::label_of(
    graph::Vertex node) const {
  OTIS_REQUIRE(node >= 0 && node < order(),
               "OtisSwapNetwork::label_of: node out of range");
  const graph::Vertex n = factor_.order();
  return {node / n, node % n};
}

std::int64_t OtisSwapNetwork::optical_arc_count() const {
  const std::int64_t n = factor_.order();
  return n * n - n;
}

std::int64_t OtisSwapNetwork::electronic_arc_count() const {
  return factor_.order() * factor_.size();
}

}  // namespace otis::topology
