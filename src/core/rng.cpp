#include "core/rng.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace otis::core {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : state_) {
    lane = splitmix64(sm);
  }
  // xoshiro must not start at the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) noexcept {
  std::uint64_t sm = seed;
  std::uint64_t mixed = splitmix64(sm) ^ (stream_id * 0xda942042e4dd58b5ULL);
  return Rng(mixed);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) noexcept {
  // Lemire 2019: unbiased bounded integers without division in the common
  // path. bound == 0 is treated as "any 64-bit value".
  if (bound == 0) {
    return (*this)();
  }
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) {
    return lo;
  }
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 == full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_real() noexcept {
  // 53 random mantissa bits -> [0, 1) with full double resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform_real() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = i;
  }
  shuffle(values);
  return values;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  OTIS_REQUIRE(k <= n, "sample_without_replacement: k exceeds n");
  // Partial Fisher-Yates over an index vector; O(n) space, O(n + k) time.
  std::vector<std::size_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = i;
  }
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(uniform(n - i));
    std::swap(values[i], values[j]);
  }
  values.resize(k);
  return values;
}

}  // namespace otis::core
