#include "core/mathutil.hpp"

#include <limits>

#include "core/error.hpp"

namespace otis::core {

std::int64_t floor_mod(std::int64_t value, std::int64_t n) noexcept {
  std::int64_t r = value % n;
  if (r != 0 && ((r < 0) != (n < 0))) {
    r += n;
  }
  return r;
}

std::int64_t ipow(std::int64_t base, unsigned exp) {
  std::int64_t result = 1;
  for (unsigned i = 0; i < exp; ++i) {
    OTIS_REQUIRE(base == 0 ||
                     result <= std::numeric_limits<std::int64_t>::max() / base,
                 "ipow: int64 overflow");
    result *= base;
  }
  return result;
}

unsigned ceil_log(std::int64_t base, std::int64_t value) {
  OTIS_REQUIRE(base >= 2, "ceil_log: base must be >= 2");
  OTIS_REQUIRE(value >= 1, "ceil_log: value must be >= 1");
  unsigned k = 0;
  std::int64_t power = 1;
  while (power < value) {
    // power < value <= INT64_MAX, so power * base cannot be needed beyond
    // the first power >= value; guard anyway to stay overflow-safe.
    if (power > std::numeric_limits<std::int64_t>::max() / base) {
      return k + 1;
    }
    power *= base;
    ++k;
  }
  return k;
}

unsigned floor_log(std::int64_t base, std::int64_t value) {
  OTIS_REQUIRE(base >= 2, "floor_log: base must be >= 2");
  OTIS_REQUIRE(value >= 1, "floor_log: value must be >= 1");
  unsigned k = 0;
  std::int64_t power = 1;
  while (power <= value / base) {
    power *= base;
    ++k;
  }
  return k;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

bool is_power_of(std::int64_t base, std::int64_t value) {
  OTIS_REQUIRE(base >= 2, "is_power_of: base must be >= 2");
  if (value < 1) {
    return false;
  }
  while (value % base == 0) {
    value /= base;
  }
  return value == 1;
}

std::int64_t kautz_order(int degree, int diameter) {
  OTIS_REQUIRE(degree >= 1, "kautz_order: degree must be >= 1");
  OTIS_REQUIRE(diameter >= 1, "kautz_order: diameter must be >= 1");
  return ipow(degree, static_cast<unsigned>(diameter - 1)) * (degree + 1);
}

}  // namespace otis::core
