#pragma once
/// \file netlist.hpp
/// Optical component netlists.
///
/// The paper's designs are assemblies of six component types: laser
/// transmitters, photodetector receivers, optical multiplexers (the input
/// half of an OPS coupler), beam-splitters (the output half), OTIS lens
/// pairs, and plain fiber links. A Netlist is a directed wiring of such
/// components; light always flows from output ports to input ports.
/// Designs built in src/designs are verified by tracing light through the
/// netlist (trace.hpp), so the netlist is the single source of truth for
/// "what the optics actually connect".

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "otis/otis.hpp"

namespace otis::optics {

/// Component id within a netlist.
using ComponentId = std::int64_t;

/// The six component types of the paper's constructions.
enum class ComponentKind {
  kTransmitter,   ///< laser source: 0 inputs, 1 output
  kReceiver,      ///< photodetector: 1 input, 0 outputs
  kMultiplexer,   ///< OPS input half: s inputs, 1 output
  kBeamSplitter,  ///< OPS output half: 1 input, s outputs
  kOtis,          ///< OTIS(G, T) lens pair: G*T inputs, G*T outputs
  kFiber,         ///< guided link: 1 input, 1 output
};

/// Human-readable name of a component kind.
[[nodiscard]] const char* kind_name(ComponentKind kind);

/// One placed component.
struct Component {
  ComponentKind kind = ComponentKind::kFiber;
  std::int64_t inputs = 0;   ///< number of input ports
  std::int64_t outputs = 0;  ///< number of output ports
  /// For kOtis: the lens-pair parameters (inputs = outputs = G*T).
  std::int64_t otis_groups = 0;
  std::int64_t otis_group_size = 0;
  std::string label;  ///< free-form, used in error messages and dumps
};

/// Reference to one port of one component.
struct PortRef {
  ComponentId component = -1;
  std::int64_t port = 0;
  friend bool operator==(const PortRef&, const PortRef&) = default;
};

/// A directed optical wiring of components.
class Netlist {
 public:
  Netlist() = default;

  /// \name Component placement
  /// @{
  ComponentId add_transmitter(std::string label);
  ComponentId add_receiver(std::string label);
  ComponentId add_multiplexer(std::int64_t fan_in, std::string label);
  ComponentId add_beam_splitter(std::int64_t fan_out, std::string label);
  ComponentId add_otis(std::int64_t groups, std::int64_t group_size,
                       std::string label);
  ComponentId add_fiber(std::string label);
  /// @}

  /// Connects output port `from` to input port `to`. Each output drives
  /// at most one input and vice versa (free-space beams and fibers are
  /// point-to-point; fan-out only happens *inside* beam-splitters).
  void connect(PortRef from, PortRef to);

  [[nodiscard]] std::int64_t component_count() const noexcept {
    return static_cast<std::int64_t>(components_.size());
  }
  [[nodiscard]] const Component& component(ComponentId id) const;

  /// The input port wired to the given output port, if any.
  [[nodiscard]] std::optional<PortRef> link_from(PortRef output) const;

  /// The output port wired to the given input port, if any.
  [[nodiscard]] std::optional<PortRef> link_into(PortRef input) const;

  /// Where light entering `input` exits the same component: the list of
  /// output ports it illuminates (empty for receivers; all outputs for a
  /// beam-splitter; the transpose image for an OTIS block).
  [[nodiscard]] std::vector<PortRef> propagate_inside(PortRef input) const;

  /// Count of components of a given kind.
  [[nodiscard]] std::int64_t count(ComponentKind kind) const;

  /// All component ids of a given kind, in placement order.
  [[nodiscard]] std::vector<ComponentId> of_kind(ComponentKind kind) const;

  /// Checks every port of every component is wired (transmitter outputs,
  /// receiver inputs, all mux/splitter/OTIS/fiber ports). Returns a
  /// description of the first dangling port, or std::nullopt when fully
  /// wired. Designs are expected to be fully wired.
  [[nodiscard]] std::optional<std::string> find_dangling_port() const;

 private:
  ComponentId add_component(Component component);
  void check_output(PortRef ref) const;
  void check_input(PortRef ref) const;

  std::vector<Component> components_;
  /// Per component: wired peer of each output port / input port.
  std::vector<std::vector<std::optional<PortRef>>> out_links_;
  std::vector<std::vector<std::optional<PortRef>>> in_links_;
};

}  // namespace otis::optics
