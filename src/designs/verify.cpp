#include "designs/verify.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "optics/trace.hpp"

namespace otis::designs {

namespace {

using optics::ComponentId;
using optics::ComponentKind;

/// Lightpaths grouped by the single multiplexer (coupler) they traverse.
struct RealizedCoupler {
  std::set<std::int64_t> sources;
  std::set<std::int64_t> targets;
};

VerificationResult fail(std::string details) {
  VerificationResult r;
  r.ok = false;
  r.details = std::move(details);
  return r;
}

ComponentId multiplexer_on_path(const NetworkDesign& design,
                                const std::vector<ComponentId>& path) {
  ComponentId mux = -1;
  for (ComponentId id : path) {
    if (design.netlist.component(id).kind == ComponentKind::kMultiplexer) {
      mux = id;
    }
  }
  return mux;
}

}  // namespace

VerificationResult verify_design(const NetworkDesign& design,
                                 const optics::LossModel& model) {
  VerificationResult result;

  if (auto dangling = design.netlist.find_dangling_port()) {
    return fail(design.name + ": " + *dangling);
  }
  const bool is_hypergraph = design.target_hypergraph.has_value();
  const bool is_digraph = design.target_digraph.has_value();
  if (is_hypergraph == is_digraph) {
    return fail(design.name +
                ": design must declare exactly one target topology");
  }

  std::map<ComponentId, RealizedCoupler> couplers;
  std::vector<graph::Arc> realized_arcs;

  for (std::int64_t p = 0; p < design.processor_count; ++p) {
    for (ComponentId tx :
         design.tx_of_processor[static_cast<std::size_t>(p)]) {
      const auto endpoints =
          optics::trace_from_transmitter(design.netlist, tx, model);
      if (endpoints.empty()) {
        return fail(design.name + ": transmitter of processor " +
                    std::to_string(p) + " reaches no receiver");
      }
      ComponentId coupler_of_tx = -2;
      for (const optics::TraceEndpoint& e : endpoints) {
        ++result.lightpaths;
        result.max_loss_db = std::max(result.max_loss_db, e.loss_db);
        const std::int64_t q = design.processor_of_receiver(e.receiver);
        if (is_hypergraph) {
          if (e.couplers != 1) {
            return fail(design.name + ": lightpath from processor " +
                        std::to_string(p) + " crosses " +
                        std::to_string(e.couplers) +
                        " couplers (multi-OPS designs require exactly 1)");
          }
          const ComponentId mux = multiplexer_on_path(design, e.path);
          if (coupler_of_tx == -2) {
            coupler_of_tx = mux;
          } else if (coupler_of_tx != mux) {
            return fail(design.name + ": one transmitter of processor " +
                        std::to_string(p) + " feeds two multiplexers");
          }
          couplers[mux].sources.insert(p);
          couplers[mux].targets.insert(q);
        } else {
          if (e.couplers != 0 || endpoints.size() != 1) {
            return fail(design.name +
                        ": point-to-point design has a broadcast path");
          }
          realized_arcs.push_back(graph::Arc{p, q});
        }
      }
    }
  }

  if (is_hypergraph) {
    result.couplers_seen = static_cast<std::int64_t>(couplers.size());
    // Rebuild the realized hypergraph and compare up to hyperarc order.
    std::vector<hypergraph::Hyperarc> arcs;
    arcs.reserve(couplers.size());
    for (const auto& [mux, rc] : couplers) {
      hypergraph::Hyperarc h;
      h.sources.assign(rc.sources.begin(), rc.sources.end());
      h.targets.assign(rc.targets.begin(), rc.targets.end());
      arcs.push_back(std::move(h));
    }
    hypergraph::DirectedHypergraph realized(design.processor_count,
                                            std::move(arcs));
    if (!realized.equivalent_to(*design.target_hypergraph)) {
      std::ostringstream oss;
      oss << design.name << ": realized hypergraph ("
          << realized.hyperarc_count() << " couplers) differs from target ("
          << design.target_hypergraph->hyperarc_count() << " couplers)";
      return fail(oss.str());
    }
  } else {
    graph::Digraph realized = graph::Digraph::from_arcs(
        design.processor_count, realized_arcs);
    if (!realized.same_arcs(*design.target_digraph)) {
      return fail(design.name +
                  ": realized digraph differs from target digraph");
    }
  }

  result.ok = true;
  return result;
}

}  // namespace otis::designs
