#include "core/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/error.hpp"

namespace otis::core {

namespace {

std::string type_name(Json::Type type) {
  switch (type) {
    case Json::Type::kNull:
      return "null";
    case Json::Type::kBool:
      return "bool";
    case Json::Type::kNumber:
      return "number";
    case Json::Type::kString:
      return "string";
    case Json::Type::kArray:
      return "array";
    case Json::Type::kObject:
      return "object";
  }
  return "?";
}

}  // namespace

/// Recursive-descent parser; tracks line/column for error messages.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    std::ostringstream os;
    os << "JSON parse error at line " << line << ", column " << column
       << ": " << message;
    throw Error(os.str());
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_++];
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Json parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string_value();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        return parse_null();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    Json value;
    value.type_ = Json::Type::kObject;
    expect('{');
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string_text();
      skip_whitespace();
      expect(':');
      value.members_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      const char c = take();
      if (c == '}') {
        return value;
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    Json value;
    value.type_ = Json::Type::kArray;
    expect('[');
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items_.push_back(parse_value());
      skip_whitespace();
      const char c = take();
      if (c == ']') {
        return value;
      }
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  Json parse_string_value() {
    Json value;
    value.type_ = Json::Type::kString;
    value.string_ = parse_string_text();
    return value;
  }

  std::string parse_string_text() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          std::uint32_t code = parse_hex4();
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: RFC 8259 requires the low half right
            // after; emitting either half alone would put invalid
            // UTF-8 into every downstream sink.
            if (take() != '\\' || take() != 'u') {
              --pos_;
              fail("high surrogate not followed by \\u escape");
            }
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate not followed by a low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, std::uint32_t code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_bool() {
    Json value;
    value.type_ = Json::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      value.bool_ = true;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      value.bool_ = false;
    } else {
      fail("expected 'true' or 'false'");
    }
    return value;
  }

  Json parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) {
      fail("expected 'null'");
    }
    pos_ += 4;
    return Json{};
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("expected a value");
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required after decimal point");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') {
        ++pos_;
      }
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        fail("digit required in exponent");
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    Json value;
    value.type_ = Json::Type::kNumber;
    value.number_ = std::strtod(text_.c_str() + start, nullptr);
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Json Json::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  OTIS_REQUIRE(in.good(), "Json::parse_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool Json::as_bool() const {
  OTIS_REQUIRE(type_ == Type::kBool,
               "Json: expected bool, got " + type_name(type_));
  return bool_;
}

double Json::as_number() const {
  OTIS_REQUIRE(type_ == Type::kNumber,
               "Json: expected number, got " + type_name(type_));
  return number_;
}

std::int64_t Json::as_int() const {
  const double value = as_number();
  const double rounded = std::nearbyint(value);
  OTIS_REQUIRE(value == rounded, "Json: expected an integer");
  return static_cast<std::int64_t>(rounded);
}

const std::string& Json::as_string() const {
  OTIS_REQUIRE(type_ == Type::kString,
               "Json: expected string, got " + type_name(type_));
  return string_;
}

const std::vector<Json>& Json::items() const {
  OTIS_REQUIRE(type_ == Type::kArray,
               "Json: expected array, got " + type_name(type_));
  return items_;
}

const std::vector<Json::Member>& Json::members() const {
  OTIS_REQUIRE(type_ == Type::kObject,
               "Json: expected object, got " + type_name(type_));
  return members_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) {
    return nullptr;
  }
  for (const Member& member : members_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* value = find(key);
  OTIS_REQUIRE(value != nullptr, "Json: missing key \"" + key + "\"");
  return *value;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_number() : fallback;
}

std::int64_t Json::int_or(const std::string& key,
                          std::int64_t fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_int() : fallback;
}

std::string Json::string_or(const std::string& key,
                            const std::string& fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_string() : fallback;
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* value = find(key);
  return value != nullptr ? value->as_bool() : fallback;
}

}  // namespace otis::core
