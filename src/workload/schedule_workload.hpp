#pragma once
/// \file schedule_workload.hpp
/// Compiles a collectives::SlotSchedule into a closed-loop Workload so
/// the analytically-derived schedules (POPS / stack-Kautz one-to-all,
/// all-to-all gossip) finally execute under real arbitration, queueing
/// and timing skew.
///
/// Mapping: each scheduled Transmission (sender, coupler) becomes one
/// unicast packet from the sender to a deterministic representative
/// target of that coupler (the lowest-id target != sender). Slot t of
/// the schedule becomes dependency wave t: its packets are eligible
/// only once every wave t-1 packet has been delivered -- the
/// bulk-synchronous reading of the slot structure, in which a slot's
/// transmissions may only rely on data that earlier slots delivered.
///
/// The simulated makespan of the compiled workload is therefore lower-
/// bounded by the schedule's slot count, with equality exactly when the
/// network serves every wave in one slot: single wavelength, no timing
/// skew, no competing traffic, and a conflict-free schedule (each wave
/// puts at most one contender on any coupler -- which
/// validate_schedule guarantees for the shipped schedules because
/// shortest-path routing sends each packet over its scheduled coupler).
/// Arbitration pressure, WDM sharing, background load or skew push the
/// makespan above the bound; the gap is the price of real contention
/// the slot-count analysis cannot see.

#include <memory>

#include "collectives/schedule.hpp"
#include "hypergraph/stack_graph.hpp"
#include "workload/workload.hpp"

namespace otis::workload {

/// Compiles `schedule` against `network` (throws core::Error when the
/// schedule fails validate_schedule or a coupler has no target other
/// than its sender).
[[nodiscard]] std::unique_ptr<Workload> schedule_workload(
    const hypergraph::StackGraph& network,
    const collectives::SlotSchedule& schedule);

}  // namespace otis::workload
