// Claim T3 (paper Proposition 1): OTIS(d,n) perfectly realizes the
// optical interconnections of II(d,n), for ALL d and n -- not just the
// figures' sizes. Sweeps a grid of (d, n), reconstructing the node-level
// digraph from the OTIS port permutation alone and comparing arc-for-arc
// with the Imase-Itoh formula. Also times the check per instance.

#include <chrono>
#include <iostream>

#include "core/table.hpp"
#include "otis/imase_itoh_realization.hpp"
#include "topology/imase_itoh.hpp"

int main() {
  std::cout << "[Claim T3] Proposition 1 sweep: OTIS(d,n) == II(d,n)\n\n";
  otis::core::Table table({"d", "n", "ports", "verified", "microseconds"});
  bool ok = true;
  std::int64_t instances = 0;
  for (int d = 1; d <= 8; ++d) {
    for (std::int64_t n : {static_cast<std::int64_t>(d),
                           static_cast<std::int64_t>(d + 1),
                           static_cast<std::int64_t>(2 * d + 1),
                           static_cast<std::int64_t>(16),
                           static_cast<std::int64_t>(64),
                           static_cast<std::int64_t>(243)}) {
      if (n < d) {
        continue;
      }
      otis::otis::ImaseItohRealization real(d, n);
      const auto start = std::chrono::steady_clock::now();
      std::string details;
      const bool verified =
          real.verify(&details) &&
          real.realized_digraph().same_arcs(
              otis::topology::ImaseItoh(d, n).graph());
      const auto micros =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      table.add(d, n, d * n, verified, static_cast<std::int64_t>(micros));
      ok = ok && verified;
      ++instances;
      if (!verified) {
        std::cerr << "FAILED: " << details << "\n";
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n" << instances << " (d,n) instances, all realized: "
            << (ok ? "yes" : "NO") << "\n";
  return ok ? 0 : 1;
}
