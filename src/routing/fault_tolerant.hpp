#pragma once
/// \file fault_tolerant.hpp
/// Fault-tolerant routing on Kautz graphs, after Imase, Soneoka & Okada
/// 1986 (paper ref [17], cited in Sec. 2.5: label routing "can be
/// extended to generate a path of length at most k + 2 which survives
/// d - 1 link or node faults").
///
/// Two layers:
///  - a *candidate generator* that emits label-computable detour paths:
///    the primary label route (<= k), the d one-letter detours
///    x -> x.z -> route (<= k+1) and the two-letter detours (<= k+2) --
///    everything a node can compute from labels alone, no global state;
///  - route_avoiding(), which scans candidates in length order and falls
///    back to BFS-on-the-surviving-graph only if every candidate is hit.
///
/// The theorem itself (d-1 faults leave some path of length <= k+2) is
/// exercised by tests/bench via survives_with_bound().

#include <cstdint>
#include <optional>
#include <vector>

#include "routing/kautz_routing.hpp"

namespace otis::routing {

/// A routed path plus how it was obtained.
struct FaultTolerantRoute {
  std::vector<std::int64_t> path;  ///< vertices, source first
  bool used_bfs_fallback = false;  ///< true if candidates were exhausted
};

/// Fault-tolerant router wrapping a KautzRouter.
class FaultTolerantKautzRouter {
 public:
  explicit FaultTolerantKautzRouter(topology::Kautz kautz);

  [[nodiscard]] const KautzRouter& base() const noexcept { return router_; }

  /// All label-computable candidate paths from source to target, sorted
  /// by length: primary route, one-letter detours, two-letter detours.
  /// Paths are vertex sequences; duplicates are removed.
  [[nodiscard]] std::vector<std::vector<std::int64_t>> candidate_paths(
      std::int64_t source, std::int64_t target) const;

  /// First candidate whose *internal* vertices avoid `faulty` (endpoints
  /// are exempt); BFS fallback on the surviving subgraph if none works.
  /// nullopt when target is unreachable even by BFS.
  [[nodiscard]] std::optional<FaultTolerantRoute> route_avoiding(
      std::int64_t source, std::int64_t target,
      const std::vector<std::int64_t>& faulty) const;

  /// The [17] property for one instance: with the given faults, does a
  /// path of length <= k + 2 survive from source to target?
  [[nodiscard]] bool survives_with_bound(
      std::int64_t source, std::int64_t target,
      const std::vector<std::int64_t>& faulty) const;

  /// Link-fault variant (the paper says "link or node faults"): first
  /// candidate whose arcs avoid `faulty_arcs`, BFS-avoiding-arcs
  /// fallback. nullopt when disconnected.
  [[nodiscard]] std::optional<FaultTolerantRoute> route_avoiding_arcs(
      std::int64_t source, std::int64_t target,
      const std::vector<graph::Arc>& faulty_arcs) const;

  /// The [17] bound under link faults.
  [[nodiscard]] bool survives_arc_faults_with_bound(
      std::int64_t source, std::int64_t target,
      const std::vector<graph::Arc>& faulty_arcs) const;

 private:
  [[nodiscard]] bool path_avoids(const std::vector<std::int64_t>& path,
                                 const std::vector<std::int64_t>& faulty) const;

  KautzRouter router_;
};

}  // namespace otis::routing
