#pragma once
/// \file manifest.hpp
/// Cell-completion manifest: what makes interrupted campaigns resumable.
///
/// The runner appends one line -- the canonical cell ID -- to the
/// manifest after a cell's results have been flushed to every file sink.
/// A rerun with --resume loads the manifest, drops completed cells from
/// the pending set, and appends the remaining rows to the existing output
/// files. Because the ID encodes the full cell parameters (not a linear
/// index), a manifest stays valid when a spec later grows new axis
/// values: only genuinely new cells run.

#include <fstream>
#include <string>
#include <unordered_set>

namespace otis::campaign {

/// Append-only record of completed cell IDs.
class Manifest {
 public:
  /// Opens `path` for appending (`resume` true keeps existing lines,
  /// false truncates any previous manifest).
  Manifest(const std::string& path, bool resume);

  /// IDs recorded in `path`; empty set when the file does not exist.
  [[nodiscard]] static std::unordered_set<std::string> load(
      const std::string& path);

  /// Marks one cell complete. Flushes so a kill right after still finds
  /// the line on the next run.
  void record(const std::string& cell_id);

 private:
  std::ofstream out_;
};

}  // namespace otis::campaign
