#pragma once
/// \file ops_network.hpp
/// Slot-synchronous simulator of multi-OPS networks.
///
/// Model (matching the paper's hardware assumptions):
///  - time is slotted; in one slot a coupler carries at most one packet
///    (single-wavelength OPS, Sec. 2.2);
///  - a processor owns one statically-tuned transmitter per out-coupler
///    and one receiver per in-coupler, so it can send and receive on all
///    its couplers in the same slot (multi-hop network with fixed tuning,
///    Sec. 1);
///  - a transmission on a coupler is heard by all its targets; the
///    routing relay (or the destination) consumes it, everyone else
///    discards it;
///  - contention for a coupler is resolved by a pluggable arbitration
///    policy -- the "distributed control" knob of the companion paper
///    [11]: token round-robin, random winner, or oblivious (collision
///    destroys all packets in that coupler-slot; senders retry).
///
/// The simulator runs on the generic EventQueue (one event per slot) and
/// works for *any* stack-graph network: POPS, stack-Kautz and
/// stack-Imase-Itoh differ only in the StackGraph and the routing
/// callbacks handed in.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/rng.hpp"
#include "hypergraph/stack_graph.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/traffic.hpp"

namespace otis::sim {

/// Coupler-contention resolution policies.
enum class Arbitration {
  kTokenRoundRobin,  ///< rotating priority per coupler: fair, collision-free
  kRandomWinner,     ///< uniformly random contender wins, others wait
  kSlottedAloha,     ///< each contender transmits w.p. 1/2; >1 collides
};

[[nodiscard]] const char* arbitration_name(Arbitration policy);

/// A packet in flight.
struct Packet {
  std::int64_t id = 0;
  hypergraph::Node source = 0;
  hypergraph::Node destination = 0;
  SimTime created = 0;
  int hops = 0;
};

/// Routing callbacks: which coupler a node uses for a destination, and
/// which member of the coupler's target set relays the packet onward.
struct RoutingHooks {
  /// next_coupler(current, destination) -> coupler id.
  std::function<hypergraph::HyperarcId(hypergraph::Node, hypergraph::Node)>
      next_coupler;
  /// relay_on(coupler, destination) -> the node that picks the packet up
  /// off that coupler (must be one of the coupler's targets).
  std::function<hypergraph::Node(hypergraph::HyperarcId, hypergraph::Node)>
      relay_on;
};

/// Simulator configuration.
struct SimConfig {
  Arbitration arbitration = Arbitration::kTokenRoundRobin;
  std::int64_t warmup_slots = 200;     ///< excluded from metrics
  std::int64_t measure_slots = 2000;   ///< measured window
  std::int64_t queue_capacity = 0;     ///< 0 = unbounded VOQs
  std::uint64_t seed = 1;
  bool drain = false;  ///< keep running (no new traffic) until empty
  /// Wavelengths per coupler (WDM extension; the paper's couplers are
  /// single-wavelength, its "further research" direction): up to this
  /// many senders succeed per coupler-slot. Must be >= 1.
  std::int64_t wavelengths = 1;
};

/// The slot-synchronous multi-OPS network simulator.
class OpsNetworkSim {
 public:
  /// `network` must outlive the simulator. Traffic generator is owned.
  OpsNetworkSim(const hypergraph::StackGraph& network, RoutingHooks routing,
                std::unique_ptr<TrafficGenerator> traffic, SimConfig config);

  /// Runs warmup + measurement (+ optional drain); returns the metrics of
  /// the measurement window.
  RunMetrics run();

  /// Per-coupler successful-transmission counts of the measured window
  /// (valid after run()).
  [[nodiscard]] const std::vector<std::int64_t>& coupler_successes() const {
    return coupler_success_;
  }

 private:
  void slot();
  void enqueue(Packet packet, hypergraph::Node at);

  const hypergraph::StackGraph& network_;
  RoutingHooks routing_;
  std::unique_ptr<TrafficGenerator> traffic_;
  SimConfig config_;
  core::Rng rng_;
  EventQueue queue_;

  /// Virtual output queues: per node, per out-coupler slot (indexed by
  /// position of the coupler in out_hyperarcs(node)).
  std::vector<std::vector<std::deque<Packet>>> voq_;
  /// Position of each coupler in its sources' out-coupler lists:
  /// voq_slot_[node][coupler-position] mirrors out_hyperarcs order.
  std::vector<std::int64_t> token_;  ///< per coupler, round-robin cursor
  std::vector<std::int64_t> coupler_success_;
  RunMetrics metrics_;
  bool measuring_ = false;
  std::int64_t next_packet_id_ = 0;
  std::int64_t inflight_ = 0;
};

}  // namespace otis::sim
