#include "campaign/sink.hpp"

#include <filesystem>
#include <ios>
#include <system_error>

#include "core/error.hpp"
#include "core/table.hpp"

namespace otis::campaign {

namespace {

std::ios_base::openmode file_mode(bool append) {
  return append ? (std::ios::out | std::ios::app)
                : (std::ios::out | std::ios::trunc);
}

/// Fixed-precision float text shared by both file sinks; determinism of
/// the byte stream depends on never using default operator<< for doubles.
std::string num(double value) { return core::format_double(value, 6); }

/// RFC-4180 quoting for cells that carry topology labels / cell IDs --
/// both contain commas (e.g. "SK(4,3,2)").
std::string quoted(const std::string& cell) {
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

JsonlSink::JsonlSink(const std::string& path, bool append)
    : out_(path, file_mode(append)) {
  OTIS_REQUIRE(out_.good(), "JsonlSink: cannot open " + path);
}

void JsonlSink::consume(const CellResult& r) {
  const sim::RunMetrics& m = r.metrics;
  out_ << "{\"cell_id\": \"" << r.cell.id << "\""
       << ", \"topology\": \"" << r.topology_label << "\""
       << ", \"arbitration\": \""
       << sim::arbitration_name(r.cell.arbitration) << "\""
       << ", \"traffic\": \"" << r.cell.traffic.label() << "\""
       << ", \"load\": " << num(r.cell.load)
       << ", \"wavelengths\": " << r.cell.wavelengths
       << ", \"routes\": \"" << sim::route_table_name(r.cell.routes) << "\""
       << ", \"timing\": \"" << r.cell.timing.label() << "\""
       << ", \"workload\": \"" << r.cell.workload.label() << "\""
       << ", \"seed\": " << r.cell.seed << ", \"nodes\": " << r.nodes
       << ", \"couplers\": " << r.couplers << ", \"slots\": " << m.slots
       << ", \"offered\": " << m.offered_packets
       << ", \"delivered\": " << m.delivered_packets
       << ", \"dropped\": " << m.dropped_packets
       << ", \"collisions\": " << m.collisions
       << ", \"coupler_transmissions\": " << m.coupler_transmissions
       << ", \"backlog\": " << m.backlog
       << ", \"throughput_per_node\": " << num(m.throughput_per_node(r.nodes))
       << ", \"mean_latency\": " << num(m.latency.mean())
       << ", \"p95_latency\": " << m.latency.percentile(0.95)
       << ", \"max_latency\": " << m.latency.max()
       << ", \"coupler_utilization\": "
       << num(m.coupler_utilization(r.couplers))
       << ", \"delivered_fraction\": "
       << num(m.offered_packets > 0
                  ? static_cast<double>(m.delivered_packets) /
                        static_cast<double>(m.offered_packets)
                  : 0.0)
       << ", \"makespan\": " << m.makespan_slots << "}\n";
}

void JsonlSink::flush() { out_.flush(); }

const std::vector<std::string>& CsvSink::columns() {
  static const std::vector<std::string> kColumns = {
      "cell_id",       "topology",    "arbitration",
      "traffic",       "load",        "wavelengths",
      "routes",        "timing",      "workload",
      "seed",          "nodes",       "couplers",
      "slots",         "offered",     "delivered",
      "dropped",       "collisions",  "coupler_transmissions",
      "backlog",       "throughput_per_node",
      "mean_latency",  "p95_latency", "max_latency",
      "coupler_utilization",          "delivered_fraction",
      "makespan"};
  return kColumns;
}

CsvSink::CsvSink(const std::string& path, bool append)
    : out_(path, file_mode(append)) {
  OTIS_REQUIRE(out_.good(), "CsvSink: cannot open " + path);
  // Append mode still needs the header when nothing was written yet
  // (e.g. --resume pointed at a fresh directory); a headerless CSV
  // shifts every column for DictReader-style consumers.
  std::error_code ec;
  const auto existing = std::filesystem::file_size(path, ec);
  if (!append || ec || existing == 0) {
    const std::vector<std::string>& cols = columns();
    for (std::size_t i = 0; i < cols.size(); ++i) {
      out_ << (i > 0 ? "," : "") << cols[i];
    }
    out_ << "\n";
  }
}

void CsvSink::consume(const CellResult& r) {
  const sim::RunMetrics& m = r.metrics;
  out_ << quoted(r.cell.id) << "," << quoted(r.topology_label) << ","
       << sim::arbitration_name(r.cell.arbitration) << ","
       << quoted(r.cell.traffic.label()) << "," << num(r.cell.load) << ","
       << r.cell.wavelengths << "," << sim::route_table_name(r.cell.routes)
       << "," << quoted(r.cell.timing.label()) << ","
       << quoted(r.cell.workload.label()) << "," << r.cell.seed << ","
       << r.nodes << ","
       << r.couplers << "," << m.slots << "," << m.offered_packets << ","
       << m.delivered_packets << "," << m.dropped_packets << ","
       << m.collisions << "," << m.coupler_transmissions << "," << m.backlog
       << "," << num(m.throughput_per_node(r.nodes)) << ","
       << num(m.latency.mean()) << "," << m.latency.percentile(0.95) << ","
       << m.latency.max() << "," << num(m.coupler_utilization(r.couplers))
       << ","
       << num(m.offered_packets > 0
                  ? static_cast<double>(m.delivered_packets) /
                        static_cast<double>(m.offered_packets)
                  : 0.0)
       << "," << m.makespan_slots << "\n";
}

void CsvSink::flush() { out_.flush(); }

void AggregateSink::consume(const CellResult& r) {
  fold(r.topology_label, sim::arbitration_name(r.cell.arbitration),
       r.cell.traffic.label(), r.cell.load, r.cell.wavelengths,
       r.cell.routes, r.cell.timing.label(), r.cell.workload.label(),
       r.nodes, r.couplers,
       sim::SweepPoint::from_trial(r.metrics, r.cell.load, r.nodes,
                                   r.couplers));
}

void AggregateSink::fold(const std::string& topology,
                         const std::string& arbitration,
                         const std::string& traffic, double load,
                         std::int64_t wavelengths, sim::RouteTable routes,
                         const std::string& timing,
                         const std::string& workload, std::int64_t nodes,
                         std::int64_t couplers,
                         const sim::SweepPoint& trial) {
  // Loads are matched through their emitted 6-decimal form, not exact
  // double equality: resumed trials arrive round-tripped through the
  // JSONL formatting and must land in the same group as live ones.
  const std::string load_key = num(load);
  for (Group& group : groups_) {
    if (group.topology == topology && group.arbitration == arbitration &&
        group.traffic == traffic && num(group.load) == load_key &&
        group.wavelengths == wavelengths && group.routes == routes &&
        group.timing == timing && group.workload == workload) {
      group.point.merge(trial);
      return;
    }
  }
  Group group;
  group.topology = topology;
  group.arbitration = arbitration;
  group.traffic = traffic;
  group.load = load;
  group.wavelengths = wavelengths;
  group.routes = routes;
  group.timing = timing;
  group.workload = workload;
  group.nodes = nodes;
  group.couplers = couplers;
  group.point = trial;
  groups_.push_back(std::move(group));
}

void AggregateSink::write_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  OTIS_REQUIRE(out.good(), "AggregateSink: cannot open " + path);
  out << "topology,arbitration,traffic,load,wavelengths,routes,timing,"
         "workload,trials,throughput_per_node,throughput_stddev,"
         "mean_latency,mean_latency_stddev,p95_latency,p95_latency_stddev,"
         "coupler_utilization,coupler_utilization_stddev,collision_rate,"
         "collision_rate_stddev,delivered_fraction,"
         "delivered_fraction_stddev,makespan,makespan_stddev\n";
  for (const Group& g : groups_) {
    const sim::SweepPoint& p = g.point;
    out << quoted(g.topology) << "," << g.arbitration << ","
        << quoted(g.traffic) << "," << num(g.load) << ","
        << g.wavelengths << "," << sim::route_table_name(g.routes) << ","
        << quoted(g.timing) << "," << quoted(g.workload) << ","
        << p.trials << ","
        << num(p.throughput_per_node) << "," << num(p.throughput_stddev)
        << "," << num(p.mean_latency) << "," << num(p.mean_latency_stddev)
        << "," << num(p.p95_latency) << "," << num(p.p95_latency_stddev)
        << "," << num(p.coupler_utilization) << ","
        << num(p.coupler_utilization_stddev) << "," << num(p.collision_rate)
        << "," << num(p.collision_rate_stddev) << ","
        << num(p.delivered_fraction) << ","
        << num(p.delivered_fraction_stddev) << "," << num(p.makespan) << ","
        << num(p.makespan_stddev) << "\n";
  }
}

}  // namespace otis::campaign
