#include "obs/trace_sink.hpp"

#include <algorithm>
#include <fstream>

#include "core/error.hpp"

namespace otis::obs {

namespace detail {

std::string json_escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace detail

namespace {

using detail::json_escaped;

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::string path)
    : path_(std::move(path)), epoch_(std::chrono::steady_clock::now()) {
  OTIS_REQUIRE(!path_.empty(), "ChromeTraceSink: path must be set");
}

ChromeTraceSink::~ChromeTraceSink() {
  close();
}

std::int64_t ChromeTraceSink::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void ChromeTraceSink::emit(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!closed_) {
    events_.push_back(std::move(event));
  }
}

std::size_t ChromeTraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void ChromeTraceSink::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) {
    return;
  }
  closed_ = true;
  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) {
                       return a.tid < b.tid;
                     }
                     if (a.ts_us != b.ts_us) {
                       return a.ts_us < b.ts_us;
                     }
                     // Outer spans first at equal start, so a stack-based
                     // nesting check sees parents before children.
                     return a.dur_us > b.dur_us;
                   });
  std::ofstream out(path_, std::ios::trunc);
  OTIS_REQUIRE(out.good(),
               "ChromeTraceSink: cannot open \"" + path_ + "\" for writing");
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& e = events_[i];
    if (i > 0) {
      out << ",";
    }
    out << "\n{\"name\":\"" << json_escaped(e.name) << "\",\"cat\":\""
        << json_escaped(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.ts_us
        << ",\"dur\":" << e.dur_us << ",\"pid\":0,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      out << ",\"args\":{";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        if (a > 0) {
          out << ",";
        }
        out << "\"" << json_escaped(e.args[a].first) << "\":\""
            << json_escaped(e.args[a].second) << "\"";
      }
      out << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
  OTIS_REQUIRE(out.good(), "ChromeTraceSink: write to \"" + path_ +
                               "\" failed");
}

Span::Span(ChromeTraceSink* sink, std::int32_t tid, std::string name,
           std::string category,
           std::vector<std::pair<std::string, std::string>> args)
    : sink_(sink),
      tid_(tid),
      name_(std::move(name)),
      category_(std::move(category)),
      args_(std::move(args)) {
  if (sink_ != nullptr) {
    start_us_ = sink_->now_us();
  }
}

void Span::end() {
  if (sink_ == nullptr) {
    return;
  }
  TraceEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.ts_us = start_us_;
  event.dur_us = sink_->now_us() - start_us_;
  event.tid = tid_;
  event.args = std::move(args_);
  sink_->emit(std::move(event));
  sink_ = nullptr;
}

void Span::swap(Span& other) noexcept {
  std::swap(sink_, other.sink_);
  std::swap(tid_, other.tid_);
  std::swap(start_us_, other.start_us_);
  name_.swap(other.name_);
  category_.swap(other.category_);
  args_.swap(other.args_);
}

}  // namespace otis::obs
