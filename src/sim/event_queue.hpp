#pragma once
/// \file event_queue.hpp
/// Generic discrete-event simulation core.
///
/// The OPS network simulator is slot-synchronous (single-wavelength
/// couplers make time naturally slotted), but it is built on this
/// general event engine so that asynchronous extensions (tuning
/// latencies, unequal propagation delays) slot in without rework.
/// Events at equal times fire in schedule order (stable FIFO tie-break),
/// which keeps runs bit-reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace otis::sim {

/// Simulation clock type: abstract time units (slots for the OPS model).
using SimTime = std::int64_t;

/// A deterministic discrete-event engine.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (>= now()).
  void schedule_at(SimTime at, Action action);

  /// Schedules `action` `delay` units after now().
  void schedule_in(SimTime delay, Action action);

  /// Current simulation time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// True when no events remain.
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const noexcept {
    return events_.size();
  }

  /// Runs events until the queue drains or the next event is later than
  /// `until`. Returns the number of events executed.
  std::int64_t run_until(SimTime until);

  /// Runs everything (use with care: actions may self-perpetuate).
  std::int64_t run_all();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace otis::sim
