#pragma once
/// \file kautz.hpp
/// Kautz digraphs KG(d, k) with word labels (paper Def. 2) and the
/// explicit bijection onto Imase-Itoh integer labels (paper Cor. 1).
///
/// A vertex is a word (x_1, .., x_k) over the alphabet {0, .., d} with
/// x_i != x_{i+1}; arcs shift the word left and append a fresh letter.
/// KG(d,k) has N = d^{k-1}(d+1) vertices, degree d and diameter k, is
/// Eulerian and Hamiltonian, and is vertex-optimal for d > 2 (Kautz 1968).
///
/// Vertex numbering. This class numbers vertices so that the arc set is
/// *identical* (not merely isomorphic) to II(d, N): the proof of
/// L(II(d,n)) = II(d, d*n) assigns arc (u, alpha) of II(d,n) the number
/// phi(u, alpha) = d*u + alpha - 1, and a Kautz word of length k is an
/// arc of KG(d, k-1). Recursing down to KG(d,1) = K_{d+1} = II(d, d+1)
/// (where word (x_1) is vertex x_1) yields
///
///   iota_1(x_1)        = x_1
///   iota_k(x_1 .. x_k) = d * iota_{k-1}(x_1 .. x_{k-1}) + alpha - 1,
///     where alpha = (-d * iota_{k-1}(x_1..x_{k-1})
///                    - iota_{k-1}(x_2..x_k)) mod d^{k-2}(d+1).
///
/// That alpha is always in 1..d because prefix -> suffix is an arc of
/// KG(d, k-1) (induction hypothesis). The inverse peels digits base d.
/// Tests cross-check the bijection against brute-force BFS and against
/// find_isomorphism on small instances.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace otis::topology {

/// A Kautz vertex label: k letters over {0, .., d}, adjacent letters
/// distinct.
using Word = std::vector<int>;

/// Kautz digraph KG(d, k) with both label systems attached.
class Kautz {
 public:
  /// Requires degree >= 1 and diameter >= 1. KG(1, k) is the directed
  /// cycle on 2 vertices for k = 1 (degenerate but well defined).
  Kautz(int degree, int diameter);

  [[nodiscard]] int degree() const noexcept { return d_; }
  [[nodiscard]] int diameter() const noexcept { return k_; }
  /// Alphabet size d+1.
  [[nodiscard]] int alphabet() const noexcept { return d_ + 1; }
  /// N = d^{k-1} (d+1).
  [[nodiscard]] std::int64_t order() const noexcept { return n_; }

  /// The digraph, in Imase-Itoh numbering (see file comment).
  [[nodiscard]] const graph::Digraph& graph() const noexcept { return graph_; }

  /// Kautz word of vertex v.
  [[nodiscard]] Word word_of(std::int64_t v) const;

  /// Vertex number of a word (validates the word).
  [[nodiscard]] std::int64_t vertex_of(const Word& word) const;

  /// True if `word` has length k, letters in {0..d}, adjacent distinct.
  [[nodiscard]] bool is_valid_word(const Word& word) const;

  /// The word reached from `word` by shifting in letter z (z != last
  /// letter): (x_2, .., x_k, z).
  [[nodiscard]] static Word shift(const Word& word, int z);

  /// All words of KG(d,k) in vertex-number order.
  [[nodiscard]] std::vector<Word> all_words() const;

  /// Render a word as a compact string, e.g. "102" (letters > 9 are
  /// separated by dots).
  [[nodiscard]] static std::string word_to_string(const Word& word);

 private:
  [[nodiscard]] std::int64_t vertex_of_impl(const int* letters,
                                            int length) const;
  void word_of_impl(std::int64_t v, int length, int* out) const;

  int d_;
  int k_;
  std::int64_t n_;
  graph::Digraph graph_;
};

/// KG+(d, k): the Kautz graph with a loop added at every vertex, degree
/// d+1 (paper Sec. 2.7) -- the base graph of the stack-Kautz network.
/// Loops are appended after the d Imase-Itoh-ordered arcs of each vertex.
[[nodiscard]] graph::Digraph kautz_with_loops(int degree, int diameter);

}  // namespace otis::topology
