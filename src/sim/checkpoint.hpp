#pragma once
/// \file checkpoint.hpp
/// Versioned engine-state checkpoints (SimConfig::checkpoint_*).
///
/// A checkpoint blob is a fixed little-endian layout (core/blob.hpp):
///
///   [magic "OTISCKP1"] [version u64] [config fingerprint] [engine payload]
///
/// The fingerprint pins everything the payload's meaning depends on --
/// engine, seed, window sizes, queue capacity, wavelengths, arbitration,
/// drain flag, latency representation, and the topology's node/coupler
/// counts. A resume against a blob whose fingerprint does not match the
/// current run silently starts fresh (the blob belongs to some other
/// cell or an older spec), it is never an error. The engine payload
/// that follows is owned by each engine's run function; restored runs
/// are bit-identical to uninterrupted ones, which the fingerprint makes
/// safe to assume.

#include <cstdint>
#include <string>
#include <vector>

#include "core/blob.hpp"
#include "core/error.hpp"
#include "sim/metrics.hpp"
#include "sim/voq_arena.hpp"

namespace otis::obs {
class Telemetry;
}  // namespace otis::obs

namespace otis::sim {

struct SimConfig;

/// Blob layout version; bump on any payload format change.
inline constexpr std::uint64_t kCheckpointVersion = 1;

/// Appends magic, version and the config fingerprint to `out`. Engines
/// call this first, then append their payload.
void checkpoint_write_header(core::BlobWriter& out, const SimConfig& config,
                             std::int64_t nodes, std::int64_t couplers);

/// Consumes and validates the header from `in`. Returns true when the
/// blob was written by checkpoint_write_header for this exact
/// (config, topology); false on any mismatch. Throws only on a
/// truncated buffer (checkpoint_load screens that out).
[[nodiscard]] bool checkpoint_read_header(core::BlobReader& in,
                                          const SimConfig& config,
                                          std::int64_t nodes,
                                          std::int64_t couplers);

/// Reads the blob at `path` into `bytes` and checks its header against
/// (config, nodes, couplers). Returns true only when a full, matching
/// checkpoint is present; any failure (missing file, truncation, wrong
/// fingerprint) returns false and the caller runs from slot 0. Never
/// throws.
[[nodiscard]] bool checkpoint_load(const std::string& path,
                                   const SimConfig& config, std::int64_t nodes,
                                   std::int64_t couplers,
                                   std::vector<std::uint8_t>& bytes);

/// Writes a finished blob to `config.checkpoint_path` atomically
/// (tmp + rename), so a crash mid-write never corrupts the previous
/// checkpoint.
void checkpoint_store(const std::string& path, const core::BlobWriter& out);

/// RunMetrics round-trip (the latency representation -- full samples or
/// sketch -- is part of the encoding).
void checkpoint_put_metrics(core::BlobWriter& out, const RunMetrics& m);
void checkpoint_get_metrics(core::BlobReader& in, RunMetrics& m);

/// VOQ arena round-trip. Entries are written head-to-tail per queue and
/// re-pushed on restore, so the restored arena reproduces every queue's
/// logical FIFO state whatever segment layout the saving run had grown
/// into. The restoring engine assigns pools (set_pool) before calling
/// checkpoint_get_voq; restore pushes happen single-threaded.
template <bool Timed>
void checkpoint_put_voq(core::BlobWriter& out, const VoqArenaT<Timed>& voq) {
  out.put_u64(voq.queue_count());
  for (std::size_t q = 0; q < voq.queue_count(); ++q) {
    out.put_u64(voq.size(q));
    voq.for_each_entry(q, [&](const typename VoqArenaT<Timed>::Entry& e) {
      out.put_i64(e.id);
      out.put_i64(e.destination);
      out.put_i64(e.created);
      out.put_i64(e.hops);
      if constexpr (Timed) {
        out.put_i64(e.ready);
      }
    });
  }
}

template <bool Timed>
void checkpoint_get_voq(core::BlobReader& in, VoqArenaT<Timed>& voq) {
  const std::uint64_t queues = in.get_u64();
  OTIS_REQUIRE(queues == voq.queue_count(),
               "checkpoint: VOQ queue count mismatch");
  for (std::size_t q = 0; q < queues; ++q) {
    const std::uint64_t n = in.get_u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      typename VoqArenaT<Timed>::Entry e;
      e.id = in.get_i64();
      e.destination = in.get_i64();
      e.created = in.get_i64();
      e.hops = static_cast<std::int32_t>(in.get_i64());
      if constexpr (Timed) {
        e.ready = in.get_i64();
      }
      voq.push(q, e);
    }
  }
}

/// Telemetry sampler continuation state: presence flag, last sampled
/// slot, and the sampler's cross-row state (header flag + previous
/// counter values), so a resumed run appends rows byte-identically to
/// an uninterrupted one. Attaching telemetry to only one side of a
/// save/resume pair is a configuration error (OTIS_REQUIRE).
void checkpoint_put_telemetry(core::BlobWriter& out,
                              const obs::Telemetry* tel,
                              std::int64_t tel_last);
/// Returns the restored tel_last (0 when no telemetry was saved).
[[nodiscard]] std::int64_t checkpoint_get_telemetry(core::BlobReader& in,
                                                    obs::Telemetry* tel);

}  // namespace otis::sim
