#include "campaign/spec.hpp"

#include <atomic>
#include <sstream>
#include <type_traits>

#include "collectives/pops_collectives.hpp"
#include "collectives/stack_kautz_collectives.hpp"
#include "core/error.hpp"
#include "core/json.hpp"
#include "core/table.hpp"
#include "hypergraph/pops.hpp"
#include "hypergraph/stack_imase_itoh.hpp"
#include "hypergraph/stack_kautz.hpp"

namespace otis::campaign {

namespace {

std::atomic<std::int64_t> g_compile_count{0};

sim::Arbitration parse_arbitration(const std::string& name) {
  if (name == "token") {
    return sim::Arbitration::kTokenRoundRobin;
  }
  if (name == "random") {
    return sim::Arbitration::kRandomWinner;
  }
  if (name == "aloha") {
    return sim::Arbitration::kSlottedAloha;
  }
  throw core::Error("CampaignSpec: unknown arbitration \"" + name +
                    "\" (expected token|random|aloha)");
}

sim::Engine parse_engine(const std::string& name) {
  if (name == "event-queue") {
    return sim::Engine::kEventQueue;
  }
  if (name == "phased") {
    return sim::Engine::kPhased;
  }
  if (name == "sharded") {
    return sim::Engine::kSharded;
  }
  if (name == "async") {
    return sim::Engine::kAsync;
  }
  if (name == "async-sharded") {
    return sim::Engine::kAsyncSharded;
  }
  throw core::Error(
      "CampaignSpec: unknown engine \"" + name +
      "\" (expected event-queue|phased|sharded|async|async-sharded)");
}

/// Misspelled keys must fail loudly (the Args parser sets the repo-wide
/// precedent): a silently-defaulted "seed"/"seeds" typo would archive a
/// statistically wrong grid.
void reject_unknown_keys(const core::Json& object,
                         const std::vector<std::string>& known,
                         const std::string& where) {
  for (const core::Json::Member& member : object.members()) {
    bool ok = false;
    for (const std::string& key : known) {
      if (member.first == key) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      throw core::Error("CampaignSpec: unknown key \"" + member.first +
                        "\" in " + where);
    }
  }
}

TopologySpec parse_topology(const core::Json& node) {
  const std::string kind = node.at("kind").as_string();
  if (kind == "stack_kautz") {
    reject_unknown_keys(node, {"kind", "s", "d", "k"}, "stack_kautz");
    return TopologySpec::stack_kautz(node.at("s").as_int(),
                                     node.at("d").as_int(),
                                     node.at("k").as_int());
  }
  if (kind == "pops") {
    reject_unknown_keys(node, {"kind", "t", "g"}, "pops");
    return TopologySpec::pops(node.at("t").as_int(), node.at("g").as_int());
  }
  if (kind == "stack_imase_itoh") {
    reject_unknown_keys(node, {"kind", "s", "d", "n"}, "stack_imase_itoh");
    return TopologySpec::stack_imase_itoh(node.at("s").as_int(),
                                          node.at("d").as_int(),
                                          node.at("n").as_int());
  }
  throw core::Error("CampaignSpec: unknown topology kind \"" + kind +
                    "\" (expected stack_kautz|pops|stack_imase_itoh)");
}

}  // namespace

TopologySpec TopologySpec::stack_kautz(std::int64_t s, std::int64_t d,
                                       std::int64_t k) {
  TopologySpec spec;
  spec.kind = Kind::kStackKautz;
  spec.stacking = s;
  spec.degree = d;
  spec.order = k;
  return spec;
}

TopologySpec TopologySpec::pops(std::int64_t t, std::int64_t g) {
  TopologySpec spec;
  spec.kind = Kind::kPops;
  spec.stacking = t;
  spec.degree = 0;
  spec.order = g;
  return spec;
}

TopologySpec TopologySpec::stack_imase_itoh(std::int64_t s, std::int64_t d,
                                            std::int64_t n) {
  TopologySpec spec;
  spec.kind = Kind::kStackImaseItoh;
  spec.stacking = s;
  spec.degree = d;
  spec.order = n;
  return spec;
}

std::int64_t TopologySpec::processor_count() const {
  switch (kind) {
    case Kind::kStackKautz: {
      // N = s * d^(k-1) * (d+1), the Kautz order times the stacking.
      std::int64_t groups = degree + 1;
      for (std::int64_t i = 1; i < order; ++i) {
        groups *= degree;
      }
      return stacking * groups;
    }
    case Kind::kPops:
      return stacking * order;
    case Kind::kStackImaseItoh:
      return stacking * order;
  }
  return 0;
}

std::string TopologySpec::label() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kStackKautz:
      os << "SK(" << stacking << "," << degree << "," << order << ")";
      break;
    case Kind::kPops:
      os << "POPS(" << stacking << "," << order << ")";
      break;
    case Kind::kStackImaseItoh:
      os << "SII(" << stacking << "," << degree << "," << order << ")";
      break;
  }
  return os.str();
}

std::shared_ptr<const CompiledTopology> CompiledTopology::build(
    const TopologySpec& spec, bool want_dense, bool want_compressed,
    core::WorkStealingPool* pool) {
  OTIS_REQUIRE(want_dense || want_compressed,
               "CompiledTopology: at least one table representation must "
               "be requested");
  auto topo = std::shared_ptr<CompiledTopology>(new CompiledTopology());
  topo->spec_ = spec;
  topo->label_ = spec.label();
  switch (spec.kind) {
    case TopologySpec::Kind::kStackKautz: {
      auto network = std::make_shared<hypergraph::StackKautz>(
          spec.stacking, static_cast<int>(spec.degree),
          static_cast<int>(spec.order));
      topo->stack_ = &network->stack();
      topo->processors_ = network->processor_count();
      topo->couplers_ = network->coupler_count();
      topo->schedule_builder_ = [network](bool gossip,
                                          hypergraph::Node root) {
        return gossip ? collectives::stack_kautz_gossip(*network)
                      : collectives::stack_kautz_one_to_all(*network, root);
      };
      if (want_dense) {
        topo->routes_ = std::make_shared<const routing::CompiledRoutes>(
            routing::compile_stack_kautz_routes(*network, pool));
      }
      if (want_compressed) {
        topo->compressed_routes_ =
            std::make_shared<const routing::CompressedRoutes>(
                routing::compress_stack_kautz_routes(*network, pool));
      }
      topo->owner_ = std::move(network);
      break;
    }
    case TopologySpec::Kind::kPops: {
      auto network =
          std::make_shared<hypergraph::Pops>(spec.stacking, spec.order);
      topo->stack_ = &network->stack();
      topo->processors_ = network->processor_count();
      topo->couplers_ = network->coupler_count();
      topo->schedule_builder_ = [network](bool gossip,
                                          hypergraph::Node root) {
        return gossip ? collectives::pops_gossip(*network)
                      : collectives::pops_one_to_all(*network, root);
      };
      if (want_dense) {
        topo->routes_ = std::make_shared<const routing::CompiledRoutes>(
            routing::compile_pops_routes(*network, pool));
      }
      if (want_compressed) {
        topo->compressed_routes_ =
            std::make_shared<const routing::CompressedRoutes>(
                routing::compress_pops_routes(*network, pool));
      }
      topo->owner_ = std::move(network);
      break;
    }
    case TopologySpec::Kind::kStackImaseItoh: {
      auto network = std::make_shared<hypergraph::StackImaseItoh>(
          spec.stacking, static_cast<int>(spec.degree), spec.order);
      topo->stack_ = &network->stack();
      topo->processors_ = network->processor_count();
      topo->couplers_ = network->coupler_count();
      if (want_dense) {
        topo->routes_ = std::make_shared<const routing::CompiledRoutes>(
            routing::compile_stack_imase_itoh_routes(*network, pool));
      }
      if (want_compressed) {
        topo->compressed_routes_ =
            std::make_shared<const routing::CompressedRoutes>(
                routing::compress_stack_imase_itoh_routes(*network, pool));
      }
      topo->owner_ = std::move(network);
      break;
    }
  }
  g_compile_count.fetch_add(1, std::memory_order_relaxed);
  return topo;
}

collectives::SlotSchedule CompiledTopology::collective_schedule(
    bool gossip, hypergraph::Node root) const {
  OTIS_REQUIRE(schedule_builder_ != nullptr,
               "CompiledTopology: " + label_ +
                   " has no analytic collective schedules (one_to_all/"
                   "gossip workloads need POPS or stack-Kautz)");
  OTIS_REQUIRE(root >= 0 && root < processors_,
               "CompiledTopology: schedule root out of range");
  return schedule_builder_(gossip, root);
}

std::int64_t topology_compile_count() noexcept {
  return g_compile_count.load(std::memory_order_relaxed);
}

void reset_topology_compile_count() noexcept {
  g_compile_count.store(0, std::memory_order_relaxed);
}

const char* traffic_kind_name(TrafficKind kind) {
  switch (kind) {
    case TrafficKind::kUniform:
      return "uniform";
    case TrafficKind::kSaturation:
      return "saturation";
    case TrafficKind::kHotspot:
      return "hotspot";
    case TrafficKind::kPermutation:
      return "permutation";
    case TrafficKind::kBursty:
      return "bursty";
  }
  return "?";
}

TrafficKind parse_traffic_kind(const std::string& name) {
  for (TrafficKind kind :
       {TrafficKind::kUniform, TrafficKind::kSaturation, TrafficKind::kHotspot,
        TrafficKind::kPermutation, TrafficKind::kBursty}) {
    if (name == traffic_kind_name(kind)) {
      return kind;
    }
  }
  throw core::Error(
      "CampaignSpec: unknown traffic \"" + name +
      "\" (expected uniform|saturation|hotspot|permutation|bursty)");
}

std::string TrafficSpec::label() const {
  switch (kind) {
    case TrafficKind::kHotspot: {
      std::ostringstream os;
      os << "hotspot(n" << hotspot_node << ",f"
         << core::format_double(hotspot_fraction, 4) << ")";
      return os.str();
    }
    case TrafficKind::kBursty: {
      std::ostringstream os;
      os << "bursty(on" << core::format_double(bursty_enter_on, 4) << ",off"
         << core::format_double(bursty_exit_on, 4) << ")";
      return os.str();
    }
    case TrafficKind::kUniform:
    case TrafficKind::kSaturation:
    case TrafficKind::kPermutation:
      break;
  }
  return traffic_kind_name(kind);
}

void TrafficSpec::validate() const {
  OTIS_REQUIRE(hotspot_node >= 0, "TrafficSpec: hotspot node must be >= 0");
  OTIS_REQUIRE(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0,
               "TrafficSpec: hotspot fraction must lie in [0, 1]");
  OTIS_REQUIRE(bursty_enter_on > 0.0 && bursty_enter_on <= 1.0,
               "TrafficSpec: bursty enter_on must lie in (0, 1]");
  OTIS_REQUIRE(bursty_exit_on > 0.0 && bursty_exit_on <= 1.0,
               "TrafficSpec: bursty exit_on must lie in (0, 1]");
}

const char* workload_kind_name(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kNone:
      return "none";
    case WorkloadKind::kOneToAll:
      return "one_to_all";
    case WorkloadKind::kGossip:
      return "gossip";
    case WorkloadKind::kBsp:
      return "bsp";
    case WorkloadKind::kReduce:
      return "reduce";
    case WorkloadKind::kGather:
      return "gather";
    case WorkloadKind::kTrace:
      return "trace";
  }
  return "?";
}

WorkloadKind parse_workload_kind(const std::string& name) {
  for (WorkloadKind kind :
       {WorkloadKind::kNone, WorkloadKind::kOneToAll, WorkloadKind::kGossip,
        WorkloadKind::kBsp, WorkloadKind::kReduce, WorkloadKind::kGather,
        WorkloadKind::kTrace}) {
    if (name == workload_kind_name(kind)) {
      return kind;
    }
  }
  throw core::Error(
      "CampaignSpec: unknown workload \"" + name +
      "\" (expected none|one_to_all|gossip|bsp|reduce|gather|trace)");
}

std::string WorkloadSpec::label() const {
  std::ostringstream os;
  switch (kind) {
    case WorkloadKind::kNone:
    case WorkloadKind::kGossip:
      return workload_kind_name(kind);
    case WorkloadKind::kOneToAll:
      os << "one_to_all(r" << root << ")";
      return os.str();
    case WorkloadKind::kBsp:
      os << "bsp(p" << phases << ",s" << shift << ")";
      return os.str();
    case WorkloadKind::kReduce:
      os << "reduce(r" << root << ",a" << arity << ")";
      return os.str();
    case WorkloadKind::kGather:
      os << "gather(r" << root << ")";
      return os.str();
    case WorkloadKind::kTrace: {
      // Basename only: the ID must not change when the campaign's
      // working directory does.
      const std::size_t sep = trace_file.find_last_of("/\\");
      os << "trace("
         << (sep == std::string::npos ? trace_file
                                      : trace_file.substr(sep + 1))
         << ")";
      return os.str();
    }
  }
  return workload_kind_name(kind);
}

void WorkloadSpec::validate() const {
  OTIS_REQUIRE(root >= 0, "WorkloadSpec: root must be >= 0");
  OTIS_REQUIRE(phases >= 1, "WorkloadSpec: phases must be >= 1");
  OTIS_REQUIRE(shift >= 1, "WorkloadSpec: shift must be >= 1");
  OTIS_REQUIRE(arity >= 2, "WorkloadSpec: arity must be >= 2");
  if (kind == WorkloadKind::kTrace) {
    OTIS_REQUIRE(!trace_file.empty(),
                 "WorkloadSpec: trace workloads need a file");
  }
}

sim::RouteTable parse_route_table(const std::string& name) {
  for (sim::RouteTable table : {sim::RouteTable::kDense,
                                sim::RouteTable::kCompressed,
                                sim::RouteTable::kAuto}) {
    if (name == sim::route_table_name(table)) {
      return table;
    }
  }
  throw core::Error("CampaignSpec: unknown route table \"" + name +
                    "\" (expected dense|compressed|auto)");
}

sim::LatencyMode parse_latency_mode(const std::string& name) {
  for (sim::LatencyMode mode : {sim::LatencyMode::kFull,
                                sim::LatencyMode::kSketch,
                                sim::LatencyMode::kAuto}) {
    if (name == sim::latency_mode_name(mode)) {
      return mode;
    }
  }
  throw core::Error("CampaignSpec: unknown latency_stats mode \"" + name +
                    "\" (expected full|sketch|auto)");
}

std::int64_t CampaignSpec::cell_count() const {
  const std::int64_t per_routes_value =
      static_cast<std::int64_t>(arbitrations.size()) *
      static_cast<std::int64_t>(traffics.size()) *
      static_cast<std::int64_t>(loads.size()) *
      static_cast<std::int64_t>(wavelengths.size()) *
      static_cast<std::int64_t>(timings.size()) *
      static_cast<std::int64_t>(workloads.size()) *
      static_cast<std::int64_t>(seeds.size());
  std::int64_t total = 0;
  for (const TopologySpec& topology : topologies) {
    // An override that pins the route table collapses that topology's
    // routes axis to one value (see expand_grid).
    std::int64_t routes_values =
        static_cast<std::int64_t>(route_tables.size());
    for (const CellOverride& override : overrides) {
      if (override.route_table && override.topology == topology.label()) {
        routes_values = 1;
      }
    }
    total += per_routes_value * routes_values;
  }
  return total;
}

void CampaignSpec::validate() const {
  OTIS_REQUIRE(!topologies.empty(), "CampaignSpec: topologies must be set");
  OTIS_REQUIRE(!arbitrations.empty(),
               "CampaignSpec: arbitrations must be non-empty");
  OTIS_REQUIRE(!traffics.empty(), "CampaignSpec: traffic must be non-empty");
  OTIS_REQUIRE(!route_tables.empty(),
               "CampaignSpec: routes must be non-empty");
  OTIS_REQUIRE(!loads.empty(), "CampaignSpec: loads must be non-empty");
  OTIS_REQUIRE(!wavelengths.empty(),
               "CampaignSpec: wavelengths must be non-empty");
  OTIS_REQUIRE(!seeds.empty(), "CampaignSpec: seeds must be non-empty");
  for (double load : loads) {
    OTIS_REQUIRE(load >= 0.0 && load <= 1.0,
                 "CampaignSpec: loads must lie in [0, 1]");
  }
  for (std::int64_t w : wavelengths) {
    OTIS_REQUIRE(w >= 1, "CampaignSpec: wavelengths must be >= 1");
  }
  OTIS_REQUIRE(warmup_slots >= 0, "CampaignSpec: warmup_slots must be >= 0");
  OTIS_REQUIRE(measure_slots > 0, "CampaignSpec: measure_slots must be > 0");
  OTIS_REQUIRE(queue_capacity >= 0,
               "CampaignSpec: queue_capacity must be >= 0");
  OTIS_REQUIRE(checkpoint_every >= 0,
               "CampaignSpec: checkpoint_every must be >= 0");
  OTIS_REQUIRE(hotspot_node >= 0, "CampaignSpec: hotspot_node must be >= 0");
  OTIS_REQUIRE(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0,
               "CampaignSpec: hotspot_fraction must lie in [0, 1]");
  OTIS_REQUIRE(bursty_enter_on > 0.0 && bursty_enter_on <= 1.0,
               "CampaignSpec: bursty_enter_on must lie in (0, 1]");
  OTIS_REQUIRE(bursty_exit_on > 0.0 && bursty_exit_on <= 1.0,
               "CampaignSpec: bursty_exit_on must lie in (0, 1]");
  for (const TrafficSpec& traffic : traffics) {
    traffic.validate();
  }
  OTIS_REQUIRE(!timings.empty(), "CampaignSpec: timings must be non-empty");
  for (const sim::TimingConfig& timing : timings) {
    timing.validate();
  }
  telemetry.validate();
  OTIS_REQUIRE(!telemetry.enabled() || engine != sim::Engine::kEventQueue,
               "CampaignSpec: telemetry needs the phased/sharded/async "
               "engines (the event-queue fixture has no probes)");
  OTIS_REQUIRE(!workloads.empty(),
               "CampaignSpec: workloads must be non-empty");
  for (const WorkloadSpec& load : workloads) {
    load.validate();
    // Schedule kinds exist only for POPS / stack-Kautz; the grid is a
    // full cross product, so any other topology would fail mid-run --
    // refuse the spec up front instead.
    if (load.kind == WorkloadKind::kOneToAll ||
        load.kind == WorkloadKind::kGossip) {
      for (const TopologySpec& topology : topologies) {
        OTIS_REQUIRE(topology.kind != TopologySpec::Kind::kStackImaseItoh,
                     "CampaignSpec: workload \"" + load.label() +
                         "\" needs analytic schedules, which " +
                         topology.label() +
                         " (stack-Imase-Itoh) does not have");
      }
    }
    // Closed-loop runs need unbounded VOQs and delivery feedback,
    // which the tests-only event-queue fixture does not implement
    // (see SimConfig::workload) -- refuse up front, not mid-run.
    if (load.kind != WorkloadKind::kNone) {
      OTIS_REQUIRE(queue_capacity == 0,
                   "CampaignSpec: workload cells require queue_capacity 0");
      OTIS_REQUIRE(engine != sim::Engine::kEventQueue,
                   "CampaignSpec: workload cells cannot run on the "
                   "event-queue engine (use phased/sharded/async)");
      for (const CellOverride& override : overrides) {
        OTIS_REQUIRE(override.engine != sim::Engine::kEventQueue,
                     "CampaignSpec: override pins \"" + override.topology +
                         "\" to the event-queue engine, which cannot run "
                         "the grid's workload cells");
      }
    }
    // The grid is a full cross product, so a root must be a valid node
    // of EVERY topology -- otherwise the campaign would abort mid-run
    // (processor_count() is pure arithmetic, so this costs nothing).
    if (load.kind == WorkloadKind::kOneToAll ||
        load.kind == WorkloadKind::kReduce ||
        load.kind == WorkloadKind::kGather) {
      for (const TopologySpec& topology : topologies) {
        OTIS_REQUIRE(load.root < topology.processor_count(),
                     "CampaignSpec: workload \"" + load.label() +
                         "\" root is out of range for " + topology.label() +
                         " (" + std::to_string(topology.processor_count()) +
                         " processors)");
      }
    }
  }
  for (const CellOverride& override : overrides) {
    bool matched = false;
    for (const TopologySpec& topology : topologies) {
      if (topology.label() == override.topology) {
        matched = true;
        break;
      }
    }
    OTIS_REQUIRE(matched, "CampaignSpec: override topology \"" +
                              override.topology +
                              "\" names no topology in the grid");
  }
}

namespace {

/// A numeric field that is either one value or a sweep array; every
/// value lands in `out`. Missing key -> `fallback` alone. Integral
/// targets go through as_int so a fractional tick value fails loudly
/// instead of truncating into a cell ID that was never simulated.
template <typename T>
std::vector<T> number_or_sweep(const core::Json& node, const std::string& key,
                               T fallback) {
  const auto value_of = [](const core::Json& item) {
    if constexpr (std::is_integral_v<T>) {
      return static_cast<T>(item.as_int());
    } else {
      return static_cast<T>(item.as_number());
    }
  };
  std::vector<T> values;
  const core::Json* field = node.find(key);
  if (field == nullptr) {
    values.push_back(fallback);
  } else if (field->is_array()) {
    for (const core::Json& item : field->items()) {
      values.push_back(value_of(item));
    }
    OTIS_REQUIRE(!values.empty(),
                 "CampaignSpec: sweep array \"" + key + "\" is empty");
  } else {
    values.push_back(value_of(*field));
  }
  return values;
}

/// One "traffic" entry: a plain family name (shapes from the spec-level
/// defaults) or a structured object whose shape values may be sweep
/// arrays -- each combination becomes its own axis entry.
void parse_traffic_entry(const core::Json& node, const CampaignSpec& defaults,
                         std::vector<TrafficSpec>& out) {
  TrafficSpec base;
  base.hotspot_node = defaults.hotspot_node;
  base.hotspot_fraction = defaults.hotspot_fraction;
  base.bursty_enter_on = defaults.bursty_enter_on;
  base.bursty_exit_on = defaults.bursty_exit_on;
  if (node.is_string()) {
    base.kind = parse_traffic_kind(node.as_string());
    out.push_back(base);
    return;
  }
  OTIS_REQUIRE(node.is_object(),
               "CampaignSpec: traffic entries must be names or objects");
  base.kind = parse_traffic_kind(node.at("kind").as_string());
  switch (base.kind) {
    case TrafficKind::kHotspot: {
      reject_unknown_keys(node, {"kind", "node", "fraction"},
                          "hotspot traffic");
      base.hotspot_node = node.int_or("node", base.hotspot_node);
      for (double fraction : number_or_sweep<double>(
               node, "fraction", base.hotspot_fraction)) {
        TrafficSpec entry = base;
        entry.hotspot_fraction = fraction;
        out.push_back(entry);
      }
      return;
    }
    case TrafficKind::kBursty: {
      reject_unknown_keys(node, {"kind", "enter_on", "exit_on"},
                          "bursty traffic");
      for (double enter : number_or_sweep<double>(node, "enter_on",
                                                  base.bursty_enter_on)) {
        for (double exit : number_or_sweep<double>(node, "exit_on",
                                                   base.bursty_exit_on)) {
          TrafficSpec entry = base;
          entry.bursty_enter_on = enter;
          entry.bursty_exit_on = exit;
          out.push_back(entry);
        }
      }
      return;
    }
    case TrafficKind::kUniform:
    case TrafficKind::kSaturation:
    case TrafficKind::kPermutation:
      reject_unknown_keys(node, {"kind"}, "traffic");
      out.push_back(base);
      return;
  }
}

sim::SkewProfile parse_skew_profile(const std::string& name) {
  for (sim::SkewProfile profile :
       {sim::SkewProfile::kNone, sim::SkewProfile::kConstant,
        sim::SkewProfile::kPerLevel}) {
    if (name == sim::skew_profile_name(profile)) {
      return profile;
    }
  }
  throw core::Error("CampaignSpec: unknown skew profile \"" + name +
                    "\" (expected none|const|level)");
}

/// One "timings" entry: "none" or an object with tick-valued delays;
/// "tuning" may be a sweep array (one axis entry per value).
void parse_timing_entry(const core::Json& node,
                        std::vector<sim::TimingConfig>& out) {
  if (node.is_string()) {
    OTIS_REQUIRE(node.as_string() == "none",
                 "CampaignSpec: the only named timing is \"none\" (use an "
                 "object for skewed profiles)");
    out.push_back(sim::TimingConfig{});
    return;
  }
  OTIS_REQUIRE(node.is_object(),
               "CampaignSpec: timing entries must be \"none\" or objects");
  reject_unknown_keys(
      node, {"profile", "tuning", "propagation", "level_skew", "guard"},
      "timing");
  sim::TimingConfig base;
  base.profile = parse_skew_profile(node.at("profile").as_string());
  base.propagation_ticks = node.int_or("propagation", 0);
  base.level_skew_ticks = node.int_or("level_skew", 0);
  base.guard_ticks = node.int_or("guard", 0);
  for (sim::SimTime tuning :
       number_or_sweep<sim::SimTime>(node, "tuning", 0)) {
    sim::TimingConfig entry = base;
    entry.tuning_ticks = tuning;
    entry.validate();
    out.push_back(entry);
  }
}

/// One "workloads" entry: a plain kind name or a structured object;
/// "phases" (bsp) and "arity" (reduce) may be sweep arrays.
void parse_workload_entry(const core::Json& node,
                          std::vector<WorkloadSpec>& out) {
  WorkloadSpec base;
  if (node.is_string()) {
    base.kind = parse_workload_kind(node.as_string());
    out.push_back(base);
    return;
  }
  OTIS_REQUIRE(node.is_object(),
               "CampaignSpec: workload entries must be names or objects");
  base.kind = parse_workload_kind(node.at("kind").as_string());
  switch (base.kind) {
    case WorkloadKind::kNone:
    case WorkloadKind::kGossip:
      reject_unknown_keys(node, {"kind"}, "workload");
      out.push_back(base);
      return;
    case WorkloadKind::kOneToAll:
      reject_unknown_keys(node, {"kind", "root"}, "one_to_all workload");
      base.root = node.int_or("root", base.root);
      out.push_back(base);
      return;
    case WorkloadKind::kBsp: {
      reject_unknown_keys(node, {"kind", "phases", "shift"}, "bsp workload");
      base.shift = node.int_or("shift", base.shift);
      for (std::int64_t phases :
           number_or_sweep<std::int64_t>(node, "phases", base.phases)) {
        WorkloadSpec entry = base;
        entry.phases = phases;
        out.push_back(entry);
      }
      return;
    }
    case WorkloadKind::kReduce: {
      reject_unknown_keys(node, {"kind", "root", "arity"},
                          "reduce workload");
      base.root = node.int_or("root", base.root);
      for (std::int64_t arity :
           number_or_sweep<std::int64_t>(node, "arity", base.arity)) {
        WorkloadSpec entry = base;
        entry.arity = arity;
        out.push_back(entry);
      }
      return;
    }
    case WorkloadKind::kGather:
      reject_unknown_keys(node, {"kind", "root"}, "gather workload");
      base.root = node.int_or("root", base.root);
      out.push_back(base);
      return;
    case WorkloadKind::kTrace:
      reject_unknown_keys(node, {"kind", "file"}, "trace workload");
      base.trace_file = node.at("file").as_string();
      out.push_back(base);
      return;
  }
}

CampaignSpec spec_from_json(const core::Json& root) {
  OTIS_REQUIRE(root.is_object(), "CampaignSpec: top level must be an object");
  reject_unknown_keys(root,
                      {"name", "topologies", "arbitrations", "traffic",
                       "loads", "wavelengths", "routes", "timings",
                       "workloads", "seeds", "hotspot_node",
                       "hotspot_fraction", "bursty_enter_on",
                       "bursty_exit_on", "warmup_slots", "measure_slots",
                       "queue_capacity", "engine", "engine_threads",
                       "latency_stats", "checkpoint_every",
                       "telemetry", "overrides"},
                      "campaign spec");

  CampaignSpec spec;
  spec.name = root.string_or("name", spec.name);

  for (const core::Json& node : root.at("topologies").items()) {
    spec.topologies.push_back(parse_topology(node));
  }
  if (const core::Json* arbs = root.find("arbitrations")) {
    spec.arbitrations.clear();
    for (const core::Json& node : arbs->items()) {
      spec.arbitrations.push_back(parse_arbitration(node.as_string()));
    }
  }
  // Spec-level shape defaults must exist before traffic entries parse:
  // plain-string entries inherit them.
  spec.hotspot_node = root.int_or("hotspot_node", spec.hotspot_node);
  spec.hotspot_fraction =
      root.number_or("hotspot_fraction", spec.hotspot_fraction);
  spec.bursty_enter_on =
      root.number_or("bursty_enter_on", spec.bursty_enter_on);
  spec.bursty_exit_on = root.number_or("bursty_exit_on", spec.bursty_exit_on);

  // "traffic" accepts one name, an array of names, and structured
  // objects with per-entry (sweepable) shape values.
  if (const core::Json* traffic = root.find("traffic")) {
    spec.traffics.clear();
    if (traffic->is_string()) {
      parse_traffic_entry(*traffic, spec, spec.traffics);
    } else {
      for (const core::Json& node : traffic->items()) {
        parse_traffic_entry(node, spec, spec.traffics);
      }
    }
  }
  if (const core::Json* timings = root.find("timings")) {
    spec.timings.clear();
    for (const core::Json& node : timings->items()) {
      parse_timing_entry(node, spec.timings);
    }
  }
  // "workloads" accepts one entry as well as an array, like "traffic".
  if (const core::Json* workloads = root.find("workloads")) {
    spec.workloads.clear();
    if (workloads->is_string()) {
      parse_workload_entry(*workloads, spec.workloads);
    } else {
      for (const core::Json& node : workloads->items()) {
        parse_workload_entry(node, spec.workloads);
      }
    }
  }
  // "routes" accepts one string as well as an array.
  if (const core::Json* routes = root.find("routes")) {
    spec.route_tables.clear();
    if (routes->is_string()) {
      spec.route_tables.push_back(parse_route_table(routes->as_string()));
    } else {
      for (const core::Json& item : routes->items()) {
        spec.route_tables.push_back(parse_route_table(item.as_string()));
      }
    }
  }
  if (const core::Json* loads = root.find("loads")) {
    spec.loads.clear();
    for (const core::Json& node : loads->items()) {
      spec.loads.push_back(node.as_number());
    }
  }
  if (const core::Json* wavelengths = root.find("wavelengths")) {
    spec.wavelengths.clear();
    for (const core::Json& node : wavelengths->items()) {
      spec.wavelengths.push_back(node.as_int());
    }
  }
  if (const core::Json* seeds = root.find("seeds")) {
    spec.seeds.clear();
    for (const core::Json& node : seeds->items()) {
      const std::int64_t seed = node.as_int();
      OTIS_REQUIRE(seed >= 0, "CampaignSpec: seeds must be >= 0");
      spec.seeds.push_back(static_cast<std::uint64_t>(seed));
    }
  }
  spec.warmup_slots = root.int_or("warmup_slots", spec.warmup_slots);
  spec.measure_slots = root.int_or("measure_slots", spec.measure_slots);
  spec.queue_capacity = root.int_or("queue_capacity", spec.queue_capacity);
  spec.engine = parse_engine(root.string_or("engine", "phased"));
  spec.engine_threads = static_cast<int>(
      root.int_or("engine_threads", spec.engine_threads));
  spec.latency_stats = parse_latency_mode(
      root.string_or("latency_stats", sim::latency_mode_name(
                                          spec.latency_stats)));
  spec.checkpoint_every =
      root.int_or("checkpoint_every", spec.checkpoint_every);
  if (const core::Json* telemetry = root.find("telemetry")) {
    reject_unknown_keys(
        *telemetry,
        {"sample_period", "timeseries", "trace", "runtime_stats", "probes"},
        "telemetry");
    spec.telemetry.sample_period =
        telemetry->int_or("sample_period", spec.telemetry.sample_period);
    spec.telemetry.timeseries_path =
        telemetry->string_or("timeseries", spec.telemetry.timeseries_path);
    spec.telemetry.trace_path =
        telemetry->string_or("trace", spec.telemetry.trace_path);
    spec.runtime_stats_path =
        telemetry->string_or("runtime_stats", spec.runtime_stats_path);
    if (const core::Json* probes = telemetry->find("probes")) {
      for (const core::Json& node : probes->items()) {
        spec.telemetry.probes.push_back(node.as_string());
      }
    }
  }
  if (const core::Json* overrides = root.find("overrides")) {
    for (const core::Json& node : overrides->items()) {
      reject_unknown_keys(node,
                          {"topology", "engine", "engine_threads", "routes"},
                          "override");
      CellOverride override;
      override.topology = node.at("topology").as_string();
      if (const core::Json* engine = node.find("engine")) {
        override.engine = parse_engine(engine->as_string());
      }
      if (const core::Json* threads = node.find("engine_threads")) {
        override.engine_threads = static_cast<int>(threads->as_int());
      }
      if (const core::Json* routes = node.find("routes")) {
        override.route_table = parse_route_table(routes->as_string());
      }
      spec.overrides.push_back(std::move(override));
    }
  }

  spec.validate();
  return spec;
}

}  // namespace

CampaignSpec parse_campaign_spec(const std::string& json_text) {
  return spec_from_json(core::Json::parse(json_text));
}

CampaignSpec load_campaign_spec(const std::string& path) {
  return spec_from_json(core::Json::parse_file(path));
}

}  // namespace otis::campaign
